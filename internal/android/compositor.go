package android

import (
	"sync"

	"gpuleak/internal/geom"
	"gpuleak/internal/glyph"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/render"
	"gpuleak/internal/sim"
)

// Compositor is the SurfaceFlinger-like component: it owns the login UI,
// the on-screen keyboard and the dynamic layers (popup, echo text, cursor,
// notification icons, app-switch animation) and produces the FrameStats of
// every UI change. Frames for identical UI states are cached, so sweeping
// hundreds of thousands of key presses costs one render per distinct
// state.
type Compositor struct {
	Device    DeviceModel
	Screen    geom.Size
	RefreshHz int
	App       *App
	KB        *keyboard.Layout
	UI        *LoginUI

	cfg    render.Config
	geoms  map[keyboard.Page]*keyboard.Geometry
	cache  map[stateKey]render.FrameStats
	shared *StatsCache
}

// StatsCache is a thread-safe FrameStats cache that many compositors can
// share. Rendering is a pure function of the UI state, so sessions of the
// IDENTICAL configuration (device, resolution, app, keyboard) — e.g. the
// per-(key, repeat) workers of the parallel offline phase, or the
// independent trials of one experiment batch — can pool their renders:
// each distinct frame state is rasterized once per process instead of
// once per session. Sharing a cache across differing configurations is a
// caller bug (the state key does not encode the configuration).
type StatsCache struct {
	mu sync.Mutex
	m  map[stateKey]render.FrameStats
}

// NewStatsCache returns an empty shareable render cache.
func NewStatsCache() *StatsCache {
	return &StatsCache{m: make(map[stateKey]render.FrameStats)}
}

func (sc *StatsCache) get(k stateKey) (render.FrameStats, bool) {
	sc.mu.Lock()
	st, ok := sc.m[k]
	sc.mu.Unlock()
	return st, ok
}

func (sc *StatsCache) put(k stateKey, st render.FrameStats) {
	sc.mu.Lock()
	sc.m[k] = st
	sc.mu.Unlock()
}

// Len reports how many distinct frame states the cache holds.
func (sc *StatsCache) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.m)
}

// ShareCache attaches a shared render cache; the compositor keeps its
// lock-free private map as a first-level cache on top. Call before the
// first frame is rendered.
func (c *Compositor) ShareCache(sc *StatsCache) { c.shared = sc }

type frameKind int

const (
	kindLaunch frameKind = iota
	kindPopupShow
	kindPopupHide
	kindEcho
	kindCursor
	kindNotif
	kindSwitch
	kindAnim
)

type stateKey struct {
	kind frameKind
	page keyboard.Page
	r    rune
	n    int
	on   bool
}

// NewCompositor builds the UI stack for one device configuration.
func NewCompositor(dev DeviceModel, screen geom.Size, refreshHz int, app *App, kb *keyboard.Layout) *Compositor {
	return &Compositor{
		Device:    dev,
		Screen:    screen,
		RefreshHz: refreshHz,
		App:       app,
		KB:        kb,
		UI:        app.BuildLoginUI(screen, dev.AndroidVersion),
		cfg:       render.DefaultConfig(),
		geoms:     make(map[keyboard.Page]*keyboard.Geometry),
		cache:     make(map[stateKey]render.FrameStats),
	}
}

// VsyncPeriod returns the display refresh interval.
func (c *Compositor) VsyncPeriod() sim.Time {
	return sim.Time(1_000_000 / c.RefreshHz)
}

// AlignVsync returns the first vsync boundary at or after t.
func (c *Compositor) AlignVsync(t sim.Time) sim.Time {
	p := c.VsyncPeriod()
	if t%p == 0 {
		return t
	}
	return (t/p + 1) * p
}

// Geometry returns (and caches) the keyboard geometry for a page.
func (c *Compositor) Geometry(page keyboard.Page) *keyboard.Geometry {
	if g, ok := c.geoms[page]; ok {
		return g
	}
	g := c.KB.Geometry(c.Screen, page)
	c.geoms[page] = g
	return g
}

// keyboardLayer builds the IME surface: key caps (opaque quads) plus key
// labels (vector glyph primitives — large text renders as tessellated
// paths). This layer is what a popup redraw re-renders, giving the
// ~1.6k-primitive frame deltas of Figure 5.
func (c *Compositor) keyboardLayer(page keyboard.Page) render.Layer {
	g := c.Geometry(page)
	prims := []render.Prim{render.Quad(g.Bounds, true)}
	for _, key := range g.Keys {
		prims = append(prims, render.Quad(key.Face, true))
		prims = append(prims, render.GlyphPrims(glyph.MustLookup(key.Rune()), key.LabelBox)...)
	}
	return render.Layer{Z: 10, Name: "keyboard", Prims: prims}
}

// popupLayer builds the key press popup surface above the keyboard.
func (c *Compositor) popupLayer(page keyboard.Page, r rune) (render.Layer, geom.Rect, bool) {
	g := c.Geometry(page)
	key, ok := g.KeyFor(r)
	if !ok {
		return render.Layer{}, geom.Rect{}, false
	}
	popup := g.PopupRect(key)
	prims := []render.Prim{render.Quad(popup, true)}
	prims = append(prims, render.GlyphPrims(glyph.MustLookup(r), g.PopupGlyphBox(popup))...)
	return render.Layer{Z: 20, Name: "popup", Prims: prims}, popup, true
}

// echoLayer renders the masked password echo: one atlas quad (2 triangles)
// per typed character plus an optional cursor bar. This is the physical
// basis of the Figure-14 ±2 primitive steps.
func (c *Compositor) echoLayer(n int, cursorOn bool) render.Layer {
	prims := render.AtlasTextPrims(bullets(n), c.UI.EchoLine(), c.UI.EchoCharW)
	if cursorOn {
		prims = append(prims, render.Quad(c.UI.CursorRect(n), false))
	}
	return render.Layer{Z: 6, Name: "echo", Prims: prims}
}

func bullets(n int) string {
	rs := make([]rune, n)
	for i := range rs {
		rs[i] = '•'
	}
	return string(rs)
}

// scene assembles the full current screen.
func (c *Compositor) scene(page keyboard.Page, popupRune rune, echoLen int, cursorOn bool) render.Scene {
	s := c.UI.Scene.Clone()
	s.Add(c.echoLayer(echoLen, cursorOn))
	s.Add(c.keyboardLayer(page))
	if popupRune != 0 {
		if l, _, ok := c.popupLayer(page, popupRune); ok {
			s.Add(l)
		}
	}
	return s
}

func (c *Compositor) cached(k stateKey, build func() render.FrameStats) render.FrameStats {
	if st, ok := c.cache[k]; ok {
		return st
	}
	if c.shared != nil {
		if st, ok := c.shared.get(k); ok {
			c.cache[k] = st
			return st
		}
	}
	st := build()
	c.cache[k] = st
	if c.shared != nil {
		// Concurrent builders may both render a state; the results are
		// identical (rendering is pure), so last-write-wins is benign.
		c.shared.put(k, st)
	}
	return st
}

// LaunchStats renders the first full frame after the target app opens:
// the device-recognition fingerprint of §3.2.
func (c *Compositor) LaunchStats() render.FrameStats {
	return c.cached(stateKey{kind: kindLaunch}, func() render.FrameStats {
		s := c.scene(keyboard.PageLower, 0, 0, true)
		return render.Render(&s, s.Bounds(), c.cfg)
	})
}

// PopupShowStats renders the frame in which the popup of rune r appears.
// The IME window redraws (keyboard bounds) plus the popup overhang.
func (c *Compositor) PopupShowStats(page keyboard.Page, r rune) render.FrameStats {
	return c.cached(stateKey{kind: kindPopupShow, page: page, r: r}, func() render.FrameStats {
		s := c.scene(page, r, 0, false)
		_, popup, ok := c.popupLayer(page, r)
		if !ok {
			return render.FrameStats{}
		}
		damage := c.Geometry(page).Bounds.Union(popup)
		return render.Render(&s, damage, c.cfg)
	})
}

// PopupHideStats renders the frame in which the popup disappears (same
// damage, keyboard without popup).
func (c *Compositor) PopupHideStats(page keyboard.Page, r rune) render.FrameStats {
	return c.cached(stateKey{kind: kindPopupHide, page: page, r: r}, func() render.FrameStats {
		s := c.scene(page, 0, 0, false)
		_, popup, ok := c.popupLayer(page, r)
		if !ok {
			return render.FrameStats{}
		}
		damage := c.Geometry(page).Bounds.Union(popup)
		return render.Render(&s, damage, c.cfg)
	})
}

// EchoStats renders the password-field update after the n-th character
// appears (or after a deletion leaves n characters).
func (c *Compositor) EchoStats(n int, cursorOn bool) render.FrameStats {
	return c.cached(stateKey{kind: kindEcho, n: n, on: cursorOn}, func() render.FrameStats {
		s := c.scene(keyboard.PageLower, 0, n, cursorOn)
		return render.Render(&s, c.UI.Password, c.cfg)
	})
}

// CursorStats renders a cursor blink toggle: tiny damage, tiny delta —
// the §5.3 noise source with a strict 0.5 s period.
func (c *Compositor) CursorStats(n int, on bool) render.FrameStats {
	return c.cached(stateKey{kind: kindCursor, n: n, on: on}, func() render.FrameStats {
		s := c.scene(keyboard.PageLower, 0, n, on)
		return render.Render(&s, c.UI.CursorRect(n).Inset(-2), c.cfg)
	})
}

// NotifStats renders a status-bar change with n notification icons.
func (c *Compositor) NotifStats(n int) render.FrameStats {
	return c.cached(stateKey{kind: kindNotif, n: n}, func() render.FrameStats {
		s := c.scene(keyboard.PageLower, 0, 0, false)
		sb := c.UI.StatusBar
		iconW := sb.H() - 8
		prims := make([]render.Prim, 0, n)
		for i := 0; i < n; i++ {
			x := sb.X0 + 8 + i*(iconW+6)
			prims = append(prims, render.Quad(geom.Rect{X0: x, Y0: sb.Y0 + 4, X1: x + iconW, Y1: sb.Y1 - 4}, false))
		}
		s.Add(render.Layer{Z: 8, Name: "notif", Prims: prims})
		return render.Render(&s, sb, c.cfg)
	})
}

// SwitchFrameStats renders frame i of the app-switch (recents) animation:
// full-screen redraws with scaled app cards, producing the fierce counter
// bursts of Figure 13.
func (c *Compositor) SwitchFrameStats(i, total int) render.FrameStats {
	return c.cached(stateKey{kind: kindSwitch, n: i*100 + total}, func() render.FrameStats {
		s := render.Scene{Screen: c.Screen}
		full := geom.XYWH(0, 0, c.Screen.W, c.Screen.H)
		s.Add(render.Layer{Z: 0, Name: "wallpaper", Prims: []render.Prim{render.Quad(full, true)}})
		// Two app cards shrinking/sliding with the animation phase.
		frac := float64(i+1) / float64(total+1)
		w := int(float64(c.Screen.W) * (1.0 - 0.35*frac))
		h := int(float64(c.Screen.H) * (1.0 - 0.35*frac))
		x0 := (c.Screen.W - w) / 2
		y0 := (c.Screen.H - h) / 2
		card1 := geom.Rect{X0: x0, Y0: y0, X1: x0 + w, Y1: y0 + h}
		card2 := card1.Translate(-w-40, 0).Intersect(full)
		prims := []render.Prim{render.Quad(card1, false)}
		if !card2.Empty() {
			prims = append(prims, render.Quad(card2, false))
		}
		// Card contents: a blurred snapshot approximated by banded quads.
		for b := 0; b < 6; b++ {
			band := geom.Rect{X0: card1.X0 + 16, Y0: card1.Y0 + 16 + b*h/7, X1: card1.X1 - 16, Y1: card1.Y0 + 16 + b*h/7 + h/9}
			prims = append(prims, render.Quad(band.Intersect(full), false))
		}
		s.Add(render.Layer{Z: 5, Name: "cards", Prims: prims})
		return render.Render(&s, full, c.cfg)
	})
}

// AnimFrameStats renders one frame of a decorative login animation (PNC,
// §9.3): an ornament sweeping through the animation band. Each phase has
// different stats, so these frames obfuscate the per-key deltas.
func (c *Compositor) AnimFrameStats(phase int) render.FrameStats {
	band := c.UI.AnimBand
	if band.Empty() {
		return render.FrameStats{}
	}
	const phases = 24
	phase = phase % phases
	return c.cached(stateKey{kind: kindAnim, n: phase}, func() render.FrameStats {
		s := c.scene(keyboard.PageLower, 0, 0, false)
		w := band.W() / 6
		x := band.X0 + (band.W()-w)*phase/phases
		orn := geom.Rect{X0: x, Y0: band.Y0 + 2, X1: x + w + phase*3, Y1: band.Y1 - 2}
		spark := geom.Rect{X0: x + w/3, Y0: band.Y0 + band.H()/4, X1: x + w/3 + 12 + phase, Y1: band.Y0 + band.H()/4 + 12}
		s.Add(render.Layer{Z: 7, Name: "anim", Prims: []render.Prim{
			render.Quad(band, false),
			render.Quad(orn.Intersect(band), false),
			render.Quad(spark.Intersect(band), false),
		}})
		return render.Render(&s, band, c.cfg)
	})
}

// FrameDuration converts a frame's pixel work into GPU draw time given the
// device fill rate and a contention factor from concurrent GPU load
// (0 = idle). Longer draws widen the mid-draw window in which a counter
// read observes a split delta (§7.3).
func (c *Compositor) FrameDuration(st render.FrameStats, gpuLoad float64) sim.Time {
	if gpuLoad < 0 {
		gpuLoad = 0
	}
	if gpuLoad > 0.95 {
		gpuLoad = 0.95
	}
	rate := c.Device.GPU.FillRate() * (1 - 0.75*gpuLoad)
	us := float64(st.TotalPixels) / rate
	d := sim.Time(us)
	if d < 300 {
		d = 300
	}
	if max := c.VsyncPeriod() * 3; d > max {
		d = max
	}
	return d
}

// KeyboardRedrawStats renders a plain IME redraw (page switch, layout
// change): keyboard bounds damage, no popup.
func (c *Compositor) KeyboardRedrawStats(page keyboard.Page) render.FrameStats {
	return c.cached(stateKey{kind: kindPopupHide, page: page, r: -1}, func() render.FrameStats {
		s := c.scene(page, 0, 0, false)
		return render.Render(&s, c.Geometry(page).Bounds, c.cfg)
	})
}
