package android

import (
	"testing"

	"gpuleak/internal/keyboard"
	"gpuleak/internal/render"
)

func testComp() *Compositor {
	return NewCompositor(OnePlus8Pro, FHDPlus, 60, Chase, keyboard.GBoard)
}

func TestDeviceCatalog(t *testing.T) {
	if len(Devices) != 7 {
		t.Fatalf("device count = %d", len(Devices))
	}
	d, ok := DeviceByName("OnePlus 8 Pro")
	if !ok || d.GPU != 650 {
		t.Fatalf("OnePlus 8 Pro lookup: %+v ok=%v", d, ok)
	}
	if _, ok := DeviceByName("Nokia 3310"); ok {
		t.Fatal("found nonexistent device")
	}
	for _, d := range Devices {
		if len(d.Resolutions) == 0 || len(d.RefreshRates) == 0 {
			t.Fatalf("%s missing display config", d.Name)
		}
	}
}

func TestStatusBarHeightByVersion(t *testing.T) {
	prev := 0
	for _, v := range []int{8, 9, 10, 11} {
		h := StatusBarHeight(v, FHDPlus)
		if h < prev {
			t.Fatalf("status bar shrank on Android %d", v)
		}
		prev = h
	}
}

func TestTargetApps(t *testing.T) {
	if len(TargetApps) != 9 {
		t.Fatalf("target app count = %d, want 9 (Figure 19)", len(TargetApps))
	}
	webs := 0
	for _, a := range TargetApps {
		if a.Web {
			webs++
		}
	}
	if webs != 3 {
		t.Fatalf("web target count = %d, want 3", webs)
	}
	if a, ok := AppByName("PNC"); !ok || !a.Animated {
		t.Fatal("PNC missing or not animated")
	}
}

func TestLoginUIFields(t *testing.T) {
	ui := Chase.BuildLoginUI(FHDPlus, 11)
	if ui.Username.Empty() || ui.Password.Empty() {
		t.Fatal("fields empty")
	}
	if ui.Username.Overlaps(ui.Password) {
		t.Fatal("fields overlap")
	}
	if ui.Password.Y0 <= ui.Username.Y0 {
		t.Fatal("password not below username")
	}
	if !ui.Scene.Bounds().Contains(ui.Password) {
		t.Fatal("password escapes screen")
	}
	if !Chase.BuildLoginUI(FHDPlus, 11).AnimBand.Empty() {
		t.Fatal("non-animated app has an animation band")
	}
	if PNC.BuildLoginUI(FHDPlus, 11).AnimBand.Empty() {
		t.Fatal("PNC has no animation band")
	}
}

func TestAppsHaveDistinctLaunchSignatures(t *testing.T) {
	seen := map[render.FrameStats][]string{}
	for _, a := range TargetApps {
		c := NewCompositor(OnePlus8Pro, FHDPlus, 60, a, keyboard.GBoard)
		st := c.LaunchStats()
		seen[st] = append(seen[st], a.Name)
	}
	for st, names := range seen {
		if len(names) > 1 {
			t.Fatalf("apps %v share launch signature %v", names, st)
		}
	}
}

func TestVsync(t *testing.T) {
	c := testComp()
	if c.VsyncPeriod() != 16666 {
		t.Fatalf("60Hz vsync = %v", c.VsyncPeriod())
	}
	if got := c.AlignVsync(1); got != 16666 {
		t.Fatalf("AlignVsync(1) = %v", got)
	}
	if got := c.AlignVsync(2 * 16666); got != 2*16666 {
		t.Fatalf("AlignVsync on boundary = %v", got)
	}
}

func TestPopupStatsDifferPerKey(t *testing.T) {
	c := testComp()
	seen := map[uint64][]rune{}
	for _, r := range "qwertyuiopasdfghjklzxcvbnm" {
		st := c.PopupShowStats(keyboard.PageLower, r)
		if st.IsZero() {
			t.Fatalf("no stats for %q", r)
		}
		seen[st.VisiblePrimAfterLRZ*1_000_003+st.VisiblePixelAfterLRZ] = append(seen[st.VisiblePrimAfterLRZ*1_000_003+st.VisiblePixelAfterLRZ], r)
	}
	for k, rs := range seen {
		if len(rs) > 1 {
			t.Fatalf("keys %q share popup signature %d", string(rs), k)
		}
	}
}

func TestPopupMagnitudeMatchesPaperScale(t *testing.T) {
	// Figure 5 reports VISIBLE_PRIM deltas around 1600 for popup frames on
	// a OnePlus 8 Pro with GBoard. Our model should land within 2x.
	c := testComp()
	st := c.PopupShowStats(keyboard.PageLower, 'w')
	if st.VisiblePrimAfterLRZ < 800 || st.VisiblePrimAfterLRZ > 3500 {
		t.Fatalf("popup prim delta = %d, want O(1600)", st.VisiblePrimAfterLRZ)
	}
}

func TestPopupRepeatable(t *testing.T) {
	// §3.4: repeated presses of the same key give the same delta.
	c := testComp()
	a := c.PopupShowStats(keyboard.PageLower, 'g')
	b := c.PopupShowStats(keyboard.PageLower, 'g')
	if a != b {
		t.Fatal("popup stats not repeatable")
	}
}

func TestEchoPlusTwoPrims(t *testing.T) {
	// Figure 14: the LRZ visible-prim counter increases by exactly 2 per
	// typed character and decreases by 2 per deletion.
	c := testComp()
	for n := 1; n < 16; n++ {
		prev := c.EchoStats(n-1, false)
		cur := c.EchoStats(n, false)
		if cur.VisiblePrimAfterLRZ-prev.VisiblePrimAfterLRZ != 2 {
			t.Fatalf("echo %d->%d prim delta = %d, want 2", n-1, n,
				cur.VisiblePrimAfterLRZ-prev.VisiblePrimAfterLRZ)
		}
	}
}

func TestCursorStatsTiny(t *testing.T) {
	c := testComp()
	cur := c.CursorStats(5, true)
	popup := c.PopupShowStats(keyboard.PageLower, 'a')
	if cur.VisiblePixelAfterLRZ*10 > popup.VisiblePixelAfterLRZ {
		t.Fatalf("cursor blink too large: %d vs popup %d",
			cur.VisiblePixelAfterLRZ, popup.VisiblePixelAfterLRZ)
	}
}

func TestSwitchFramesBig(t *testing.T) {
	c := testComp()
	popup := c.PopupShowStats(keyboard.PageLower, 'a')
	for i := 0; i < 12; i++ {
		st := c.SwitchFrameStats(i, 12)
		if st.VisiblePixelAfterLRZ < popup.VisiblePixelAfterLRZ {
			t.Fatalf("switch frame %d smaller than a popup", i)
		}
	}
	if c.SwitchFrameStats(0, 12) == c.SwitchFrameStats(6, 12) {
		t.Fatal("switch animation frames identical")
	}
}

func TestNotifStats(t *testing.T) {
	c := testComp()
	a := c.NotifStats(1)
	b := c.NotifStats(3)
	if a.IsZero() || a == b {
		t.Fatal("notification stats wrong")
	}
}

func TestAnimFramesOnlyForAnimatedApps(t *testing.T) {
	c := testComp()
	if !c.AnimFrameStats(3).IsZero() {
		t.Fatal("non-animated app produced animation frames")
	}
	p := NewCompositor(OnePlus8Pro, FHDPlus, 60, PNC, keyboard.GBoard)
	a := p.AnimFrameStats(3)
	b := p.AnimFrameStats(9)
	if a.IsZero() || a == b {
		t.Fatal("PNC animation frames wrong")
	}
}

func TestFrameDurationScalesWithLoad(t *testing.T) {
	c := testComp()
	st := c.LaunchStats()
	idle := c.FrameDuration(st, 0)
	loaded := c.FrameDuration(st, 0.75)
	if loaded <= idle {
		t.Fatal("GPU load did not slow drawing")
	}
	if idle < 300 {
		t.Fatal("duration below floor")
	}
}

func TestFrameDurationClamped(t *testing.T) {
	c := testComp()
	st := c.LaunchStats()
	d := c.FrameDuration(st, 5.0) // absurd load clamps
	if d > c.VsyncPeriod()*3 {
		t.Fatalf("duration %v exceeds clamp", d)
	}
}

func TestResolutionChangesSignature(t *testing.T) {
	fhd := NewCompositor(OnePlus8Pro, FHDPlus, 60, Chase, keyboard.GBoard)
	qhd := NewCompositor(OnePlus8Pro, QHDPlus, 60, Chase, keyboard.GBoard)
	if fhd.PopupShowStats(keyboard.PageLower, 'a') == qhd.PopupShowStats(keyboard.PageLower, 'a') {
		t.Fatal("resolution does not affect signatures")
	}
}

func TestCacheHitsAreStable(t *testing.T) {
	c := testComp()
	first := c.LaunchStats()
	for i := 0; i < 5; i++ {
		if c.LaunchStats() != first {
			t.Fatal("cache unstable")
		}
	}
}

func TestLoginUIVariesWithAndroidVersion(t *testing.T) {
	v9 := Chase.BuildLoginUI(FHDPlus, 9)
	v11 := Chase.BuildLoginUI(FHDPlus, 11)
	if v9.StatusBar == v11.StatusBar {
		t.Fatal("status bar identical across OS versions")
	}
	if v9.Password == v11.Password {
		t.Fatal("field geometry identical across OS versions (status bar should shift it)")
	}
}

func TestWithAndroidVersionCopies(t *testing.T) {
	d := OnePlus8Pro.WithAndroidVersion(9)
	if d.AndroidVersion != 9 || OnePlus8Pro.AndroidVersion != 11 {
		t.Fatal("WithAndroidVersion mutated the original")
	}
}

func TestKeyboardRedrawStatsPerPage(t *testing.T) {
	c := testComp()
	lower := c.KeyboardRedrawStats(keyboard.PageLower)
	number := c.KeyboardRedrawStats(keyboard.PageNumber)
	if lower.IsZero() || lower == number {
		t.Fatal("page redraws not distinct")
	}
}
