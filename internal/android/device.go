// Package android models the victim-side Android environment: device
// models (§7.5), target applications and their login scenes (§3.1), and
// the vsync-driven UI compositor that converts user/system events into GPU
// frames. It is the glue between the keyboard/glyph/render substrates and
// the adreno GPU model.
package android

import (
	"fmt"

	"gpuleak/internal/adreno"
	"gpuleak/internal/geom"
)

// DeviceModel describes a smartphone product.
type DeviceModel struct {
	Name           string
	GPU            adreno.Model
	AndroidVersion int
	// Resolutions the device supports; index 0 is the default.
	Resolutions []geom.Size
	// RefreshRates in Hz; index 0 is the default.
	RefreshRates []int
	// BatteryMilliWattHours sizes the §7.6 power model.
	BatteryMilliWattHours int
}

func (d DeviceModel) String() string {
	return fmt.Sprintf("%s (%v, Android %d)", d.Name, d.GPU, d.AndroidVersion)
}

// DefaultResolution returns the factory display resolution.
func (d DeviceModel) DefaultResolution() geom.Size { return d.Resolutions[0] }

// DefaultRefreshHz returns the factory refresh rate.
func (d DeviceModel) DefaultRefreshHz() int { return d.RefreshRates[0] }

// Common display resolutions used in the paper (§7.5: FHD+ and QHD+).
var (
	FHDPlus = geom.Size{W: 1080, H: 2376}
	QHDPlus = geom.Size{W: 1440, H: 3168}
)

// The device models evaluated in the paper (§7.5 and the artifact).
var (
	LGV30 = DeviceModel{
		Name: "LG V30+", GPU: adreno.A540, AndroidVersion: 9,
		Resolutions:  []geom.Size{{W: 1440, H: 2880}, {W: 1080, H: 2160}},
		RefreshRates: []int{60}, BatteryMilliWattHours: 12540,
	}
	Pixel2 = DeviceModel{
		Name: "Google Pixel 2", GPU: adreno.A540, AndroidVersion: 10,
		Resolutions:  []geom.Size{{W: 1080, H: 1920}},
		RefreshRates: []int{60}, BatteryMilliWattHours: 10430,
	}
	OnePlus7Pro = DeviceModel{
		Name: "OnePlus 7 Pro", GPU: adreno.A640, AndroidVersion: 11,
		Resolutions:  []geom.Size{QHDPlus, FHDPlus},
		RefreshRates: []int{90, 60}, BatteryMilliWattHours: 15200,
	}
	OnePlus8Pro = DeviceModel{
		Name: "OnePlus 8 Pro", GPU: adreno.A650, AndroidVersion: 11,
		Resolutions:  []geom.Size{FHDPlus, QHDPlus},
		RefreshRates: []int{60, 120}, BatteryMilliWattHours: 17100,
	}
	OnePlus9 = DeviceModel{
		Name: "OnePlus 9", GPU: adreno.A660, AndroidVersion: 11,
		Resolutions:  []geom.Size{{W: 1080, H: 2400}},
		RefreshRates: []int{120, 60}, BatteryMilliWattHours: 17000,
	}
	GalaxyS21 = DeviceModel{
		Name: "Samsung Galaxy S21", GPU: adreno.A660, AndroidVersion: 11,
		Resolutions:  []geom.Size{{W: 1080, H: 2400}},
		RefreshRates: []int{120, 60}, BatteryMilliWattHours: 15400,
	}
	Pixel5 = DeviceModel{
		Name: "Google Pixel 5", GPU: adreno.A620, AndroidVersion: 11,
		Resolutions:  []geom.Size{{W: 1080, H: 2340}},
		RefreshRates: []int{90, 60}, BatteryMilliWattHours: 15500,
	}
)

// Devices lists every modeled phone, in §7.5 order.
var Devices = []DeviceModel{LGV30, Pixel2, OnePlus7Pro, OnePlus8Pro, OnePlus9, GalaxyS21, Pixel5}

// DeviceByName returns the device with the given name, or false.
func DeviceByName(name string) (DeviceModel, bool) {
	for _, d := range Devices {
		if d.Name == name {
			return d, true
		}
	}
	return DeviceModel{}, false
}

// WithAndroidVersion returns a copy of the device running a different OS
// version (used by the Figure-24d sweep).
func (d DeviceModel) WithAndroidVersion(v int) DeviceModel {
	d.AndroidVersion = v
	return d
}

// StatusBarHeight returns the status bar height in pixels for the device's
// OS version; newer Android versions use taller bars. This is one of the
// version-dependent UI differences the per-configuration classifiers
// absorb (§7.5).
func StatusBarHeight(androidVersion int, screen geom.Size) int {
	base := screen.H / 40
	switch {
	case androidVersion <= 8:
		return base
	case androidVersion == 9:
		return base + 6
	case androidVersion == 10:
		return base + 10
	default:
		return base + 14
	}
}
