package android

import (
	"gpuleak/internal/geom"
	"gpuleak/internal/glyph"
	"gpuleak/internal/render"
)

// App is a target application with a credential login screen (§3.1).
type App struct {
	Name     string
	Category string
	// Web marks pages opened in Chrome rather than a native app; the
	// browser chrome adds layers to the scene.
	Web bool
	// Animated marks login screens with decorative animations (the PNC
	// example of §9.3) that continuously perturb the counters.
	Animated bool

	// Per-app layout parameters; these make each app's base scene — and
	// therefore its counter signature — distinct (Figure 19).
	headerFrac float64 // header height as fraction of screen
	cardInset  int     // card margin in 1/64ths of screen width
	fieldFrac  float64 // field height as fraction of screen
	logo       string  // header logo text
}

// Target applications from §3.1/§7.1 plus the PNC obfuscation example.
var (
	Chase       = &App{Name: "Chase", Category: "banking", headerFrac: 0.16, cardInset: 3, fieldFrac: 0.045, logo: "CHASE"}
	Amex        = &App{Name: "Amex", Category: "banking", headerFrac: 0.14, cardInset: 4, fieldFrac: 0.050, logo: "AMEX"}
	Fidelity    = &App{Name: "Fidelity", Category: "investment", headerFrac: 0.18, cardInset: 2, fieldFrac: 0.042, logo: "FIDELITY"}
	Schwab      = &App{Name: "Schwab", Category: "investment", headerFrac: 0.15, cardInset: 5, fieldFrac: 0.048, logo: "SCHWAB"}
	MyFICO      = &App{Name: "myFICO", Category: "credit", headerFrac: 0.13, cardInset: 3, fieldFrac: 0.046, logo: "FICO"}
	Experian    = &App{Name: "Experian", Category: "credit", headerFrac: 0.17, cardInset: 4, fieldFrac: 0.044, logo: "EXPERIAN"}
	ChaseWeb    = &App{Name: "chase.com", Category: "banking", Web: true, headerFrac: 0.12, cardInset: 2, fieldFrac: 0.040, logo: "CHASE"}
	SchwabWeb   = &App{Name: "schwab.com", Category: "investment", Web: true, headerFrac: 0.11, cardInset: 3, fieldFrac: 0.041, logo: "SCHWAB"}
	ExperianWeb = &App{Name: "experian.com", Category: "credit", Web: true, headerFrac: 0.13, cardInset: 4, fieldFrac: 0.043, logo: "EXPERIAN"}
	PNC         = &App{Name: "PNC", Category: "banking", Animated: true, headerFrac: 0.15, cardInset: 3, fieldFrac: 0.047, logo: "PNC"}
)

// TargetApps is the Figure-19 evaluation set, in figure order.
var TargetApps = []*App{Chase, Amex, Fidelity, Schwab, MyFICO, Experian, ChaseWeb, SchwabWeb, ExperianWeb}

// AppByName finds an app by name among all modeled apps.
func AppByName(name string) (*App, bool) {
	for _, a := range append(append([]*App{}, TargetApps...), PNC) {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// LoginUI is a realized login screen: the static scene (everything except
// the keyboard, popup, echo text and cursor, which the compositor owns)
// plus the geometry the compositor needs to draw those dynamic parts.
type LoginUI struct {
	Scene    render.Scene
	Username geom.Rect
	Password geom.Rect
	// EchoCharW is the advance width of echoed characters in the fields.
	EchoCharW int
	// AnimBand is the region swept by the decorative animation (empty for
	// non-animated apps).
	AnimBand geom.Rect
	// StatusBar is where notification icons appear.
	StatusBar geom.Rect
}

// CursorRect returns the text cursor rectangle after n echoed characters
// in the password field.
func (ui *LoginUI) CursorRect(n int) geom.Rect {
	adv := ui.EchoCharW + ui.EchoCharW/10
	x := ui.Password.X0 + 8 + n*adv
	if x > ui.Password.X1-4 {
		x = ui.Password.X1 - 4
	}
	return geom.Rect{X0: x, Y0: ui.Password.Y0 + 6, X1: x + 4, Y1: ui.Password.Y1 - 6}
}

// EchoLine returns the line box in which echoed characters are laid out.
func (ui *LoginUI) EchoLine() geom.Rect {
	return geom.Rect{X0: ui.Password.X0 + 8, Y0: ui.Password.Y0 + 8, X1: ui.Password.X1 - 8, Y1: ui.Password.Y1 - 8}
}

// BuildLoginUI lays out the app's login screen on the given display. The
// same app on different resolutions or OS versions yields different
// geometry, which is why the attack carries one classifier per device
// configuration (§3.2).
func (a *App) BuildLoginUI(screen geom.Size, androidVersion int) *LoginUI {
	ui := &LoginUI{}
	ui.Scene.Screen = screen
	full := geom.XYWH(0, 0, screen.W, screen.H)

	// Window background.
	ui.Scene.Add(render.Layer{Z: 0, Name: "background", Prims: []render.Prim{render.Quad(full, true)}})

	// Status bar.
	sbH := StatusBarHeight(androidVersion, screen)
	ui.StatusBar = geom.Rect{X0: 0, Y0: 0, X1: screen.W, Y1: sbH}
	statusPrims := []render.Prim{render.Quad(ui.StatusBar, true)}
	// Clock glyphs in the corner.
	clockBox := geom.Rect{X0: screen.W - sbH*4, Y0: 4, X1: screen.W - 8, Y1: sbH - 4}
	statusPrims = append(statusPrims, render.AtlasTextPrims("1208", clockBox, sbH/2)...)
	ui.Scene.Add(render.Layer{Z: 1, Name: "statusbar", Prims: statusPrims})

	// Header with logo text (vector glyphs — large text renders as paths).
	headerH := int(a.headerFrac * float64(screen.H))
	header := geom.Rect{X0: 0, Y0: sbH, X1: screen.W, Y1: sbH + headerH}
	logoH := headerH / 2
	logoW := logoH * 3 / 4
	logoBox := geom.Rect{
		X0: screen.W/2 - len(a.logo)*logoW/2, Y0: header.Y0 + headerH/4,
		X1: screen.W/2 + len(a.logo)*logoW/2, Y1: header.Y0 + headerH/4 + logoH,
	}
	headerPrims := []render.Prim{render.Quad(header, false)}
	x := logoBox.X0
	for _, r := range a.logo {
		headerPrims = append(headerPrims, render.GlyphPrims(glyph.MustLookup(r), geom.Rect{X0: x, Y0: logoBox.Y0, X1: x + logoW, Y1: logoBox.Y1})...)
		x += logoW + logoW/8
	}
	ui.Scene.Add(render.Layer{Z: 2, Name: "header", Prims: headerPrims})

	// Browser chrome for web targets.
	if a.Web {
		barH := screen.H / 18
		bar := geom.Rect{X0: 0, Y0: sbH, X1: screen.W, Y1: sbH + barH}
		chrome := []render.Prim{
			render.Quad(bar, true),
			render.Quad(bar.Inset(barH/5), false), // URL pill
		}
		chrome = append(chrome, render.AtlasTextPrims(a.Name, bar.Inset(barH/4), barH/3)...)
		ui.Scene.Add(render.Layer{Z: 3, Name: "chrome", Prims: chrome})
	}

	// Login card with two input fields and a button.
	inset := screen.W * a.cardInset / 64
	fieldH := int(a.fieldFrac * float64(screen.H))
	cardTop := header.Y1 + fieldH
	card := geom.Rect{X0: inset, Y0: cardTop, X1: screen.W - inset, Y1: cardTop + fieldH*6}
	ui.Username = geom.Rect{X0: card.X0 + inset, Y0: card.Y0 + fieldH, X1: card.X1 - inset, Y1: card.Y0 + 2*fieldH}
	ui.Password = geom.Rect{X0: card.X0 + inset, Y0: card.Y0 + 3*fieldH, X1: card.X1 - inset, Y1: card.Y0 + 4*fieldH}
	button := geom.Rect{X0: card.X0 + inset, Y0: card.Y0 + 5*fieldH, X1: card.X1 - inset, Y1: card.Y0 + 5*fieldH + fieldH*3/4}
	cardPrims := []render.Prim{
		render.Quad(card, false),
		render.Quad(ui.Username, true),
		render.Quad(ui.Password, true),
		render.Quad(button, false),
	}
	cardPrims = append(cardPrims, render.AtlasTextPrims("username", geom.Rect{X0: ui.Username.X0, Y0: ui.Username.Y0 - fieldH/2, X1: ui.Username.X1, Y1: ui.Username.Y0 - 4}, fieldH/3)...)
	cardPrims = append(cardPrims, render.AtlasTextPrims("password", geom.Rect{X0: ui.Password.X0, Y0: ui.Password.Y0 - fieldH/2, X1: ui.Password.X1, Y1: ui.Password.Y0 - 4}, fieldH/3)...)
	cardPrims = append(cardPrims, render.AtlasTextPrims("sign in", button.Inset(button.H()/4), button.H()/3)...)
	ui.Scene.Add(render.Layer{Z: 4, Name: "card", Prims: cardPrims})

	ui.EchoCharW = fieldH * 2 / 5

	// Decorative animation band (PNC-style): a thin strip under the
	// header that re-renders continuously.
	if a.Animated {
		ui.AnimBand = geom.Rect{X0: screen.W / 4, Y0: header.Y1, X1: screen.W * 3 / 4, Y1: header.Y1 + fieldH/2}
	}
	return ui
}
