package serve

import (
	"sync"

	"gpuleak/internal/attack"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// Batcher coalesces concurrent per-delta classification calls into
// micro-batches, one queue per model shard. Under fleet load many
// requests classify deltas against the same resident models at the same
// time; draining whatever is pending in one dispatcher pass amortizes
// scheduler wake-ups and keeps a hot shard's classification work on one
// core instead of bouncing between request goroutines.
//
// Correctness contract: classification is a pure function of (model,
// vector), so batch composition can never change a verdict — the batched
// path is byte-identical to calling (*attack.Model).ClassifyDenoised
// directly, which batcher_test.go pins for every coalescing window. The
// sim-time window only bounds which pending calls may share one flush:
// jobs whose delta timestamps are farther apart than the window are
// flushed separately, keeping batch latency proportional to the
// streams' own clocks rather than to queue depth.
type Batcher struct {
	window sim.Time
	max    int
	m      *obs.Metrics

	queues []chan *classifyJob
	pool   sync.Pool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// classifyJob is one pending classification: the model to consult, the
// delta vector and its sim-time, and the reply channel the caller blocks
// on. Jobs are pooled — the coalesce/flush hot path allocates nothing
// per call in steady state (pinned by the gpuvet hotalloc budget).
type classifyJob struct {
	m     *attack.Model
	at    sim.Time
	v     trace.Vec
	reply chan attack.Verdict
}

// NewBatcher builds a batcher with one dispatcher goroutine per shard.
// window bounds the sim-time spread of one flush (0: only calls pending
// at the same instant coalesce); max caps one flush's size (minimum 1).
// Close must be called when the batcher is no longer needed.
func NewBatcher(shards int, window sim.Time, max int, m *obs.Metrics) *Batcher {
	if shards < 1 {
		shards = 1
	}
	if max < 1 {
		max = 1
	}
	b := &Batcher{
		window: window,
		max:    max,
		m:      m,
		stop:   make(chan struct{}),
	}
	b.pool.New = func() any {
		return &classifyJob{reply: make(chan attack.Verdict, 1)}
	}
	for i := 0; i < shards; i++ {
		q := make(chan *classifyJob, max)
		b.queues = append(b.queues, q)
		b.wg.Add(1)
		go b.dispatch(q)
	}
	return b
}

// Classify routes one classification through shard's micro-batch queue
// and blocks until the verdict is ready. The result equals
// m.ClassifyDenoised(v) exactly.
func (b *Batcher) Classify(shard int, m *attack.Model, at sim.Time, v trace.Vec) attack.Verdict {
	j := b.pool.Get().(*classifyJob)
	j.m, j.at, j.v = m, at, v
	b.queues[shard%len(b.queues)] <- j
	verdict := <-j.reply
	j.m = nil
	b.pool.Put(j)
	return verdict
}

// Close stops the dispatchers. It must only be called once every
// in-flight Classify has returned (the serving layer calls it after the
// shutdown drain); it is idempotent.
func (b *Batcher) Close() {
	b.stopOnce.Do(func() { close(b.stop) })
	b.wg.Wait()
}

// dispatch is one shard's coalescing loop: block for a first job, drain
// whatever else is already pending within the sim-time window (up to the
// batch cap), then flush the whole batch in one pass.
func (b *Batcher) dispatch(q chan *classifyJob) {
	defer b.wg.Done()
	batch := make([]*classifyJob, 0, b.max)
	for {
		select {
		case j := <-q:
			batch = append(batch[:0], j)
		case <-b.stop:
			return
		}
	coalesce:
		for len(batch) < b.max {
			select {
			case j := <-q:
				if !b.sameWindow(batch[0], j) {
					// The newcomer's stream clock is outside the head's
					// window: flush what we have and start over with it.
					b.flush(batch)
					batch = append(batch[:0], j)
					continue
				}
				batch = append(batch, j)
			default:
				break coalesce
			}
		}
		b.flush(batch)
	}
}

// sameWindow reports whether two jobs' delta timestamps are close enough
// in sim-time to share one flush.
func (b *Batcher) sameWindow(head, j *classifyJob) bool {
	d := j.at - head.at
	if d < 0 {
		d = -d
	}
	return d <= b.window
}

// flush classifies every job in the batch and releases its caller. The
// per-job work is the same pure centroid scan as the unbatched path;
// the win is dispatch amortization, not a different computation.
func (b *Batcher) flush(batch []*classifyJob) {
	for _, j := range batch {
		j.reply <- j.m.ClassifyDenoised(j.v)
	}
	b.m.Add(mBatchFlushes, 1)
	b.m.Add(mBatchJobs, int64(len(batch)))
	b.m.Observe(mBatchOccupancy, float64(len(batch)))
	if len(batch) > 1 {
		b.m.Add(mBatchCoalesced, int64(len(batch)-1))
	}
}
