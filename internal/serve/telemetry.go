package serve

import (
	"net/http"

	"gpuleak/internal/obs"
)

// TraceparentHeader is the W3C-style header that carries trace context
// between loadgen, the router, and replicas. Comment frames carry the
// same value in-band on SSE streams (": traceparent <value>"), because
// SSE comment frames have no id and are never replayed across a
// failover — each hop speaks its own.
const TraceparentHeader = "traceparent"

// Span vocabulary of the serving layer. One request trace reads, in
// order: an optional router hop (the request arrived with an inbound
// traceparent), the request span covering the whole Algorithm-1 run,
// the queue admission instant, then per-delta batch classifications and
// the engine's own sampler/verdict events — all on the trace's track.
var (
	evRequest       = obs.NewName("serve.request")
	evRouterHop     = obs.NewName("serve.router_hop")
	evQueueAdmit    = obs.NewName("serve.queue_admit")
	evBatchClassify = obs.NewName("serve.batch.classify")
)

// Metric-name vocabulary of the serving layer. Names are package
// constants (never inline literals at call sites) so the gpuvet
// obsevent analyzer can hold the whole metric namespace to one
// greppable block per package.
const (
	mRejected      = "serve.rejected"
	mAdmitted      = "serve.admitted"
	mQueueTimeouts = "serve.queue_timeouts"
	mMetricScrapes = "serve.metric_scrapes"

	// RED request counters, one per endpoint family, plus the matching
	// error counters failRequest attributes. serve.errors stays as the
	// endpoint-agnostic total (writeError owns it).
	mEavesdrops       = "serve.eavesdrops"
	mTrains           = "serve.trains"
	mExperiments      = "serve.experiments"
	mErrors           = "serve.errors"
	mErrorsEavesdrop  = "serve.errors.eavesdrop"
	mErrorsTrain      = "serve.errors.train"
	mErrorsExperiment = "serve.errors.experiment"
	mErrorsSession    = "serve.errors.session"
	mErrorsStream     = "serve.errors.stream"

	// RED duration histograms: end-to-end simulated victim-session span
	// in milliseconds, bucketed per obs.DefaultBuckets, with the request
	// trace id as the bucket exemplar.
	mLatencyEavesdrop = "serve.latency_ms.eavesdrop"
	mLatencyStream    = "serve.latency_ms.stream"

	mSessionsEvicted    = "serve.sessions.evicted"
	mSessionsIdleReaped = "serve.sessions.idle_reaped"
	mSessionsCreated    = "serve.sessions.created"
	mSessionsCanceled   = "serve.sessions.canceled"
	mSessionsStreamed   = "serve.sessions.streamed"

	mRegistryHits    = "registry.hits"
	mRegistryMisses  = "registry.misses"
	mRegistryTrained = "registry.trained"

	mBatchFlushes   = "serve.batch.flushes"
	mBatchJobs      = "serve.batch.jobs"
	mBatchCoalesced = "serve.batch.coalesced"
	mBatchOccupancy = "serve.batch.occupancy"
)

// traceFor resolves a request's trace context: an inbound traceparent
// header wins (the router or load generator minted the trace upstream,
// and honoring it is what stitches the router hop and the replica run
// into one trace), otherwise the replica mints the identical context
// the router would have from the request seed — so direct and proxied
// requests for the same seed carry the same trace id.
func traceFor(r *http.Request, seed int64) obs.TraceContext {
	if tc, ok := obs.ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
		return tc
	}
	return obs.NewTrace(seed)
}

// failRequest answers an error and attributes it to one endpoint's
// error counter (the RED "E" series gpuleakstat rolls up), on top of
// the endpoint-agnostic serve.errors that writeError itself counts.
func (s *Server) failRequest(w http.ResponseWriter, errMetric string, err error) {
	s.m.Add(errMetric, 1)
	s.writeError(w, err)
}
