// Package serve is the repo's inference-serving layer: an HTTP/JSON
// front-end over the attack pipeline that mirrors the train-once /
// serve-many split of the paper (§3.2 offline phase, §5 Algorithm 1
// online phase). A sharded model registry trains classifiers on miss —
// deduplicated by singleflight, bounded by a per-shard LRU — and every
// request flows through a bounded per-shard work queue that rejects with
// 429 when full, so load beyond capacity degrades by refusal, never by
// unbounded queueing.
//
// Determinism is inherited from the layers below: for a fixed request
// (configuration, text, seed) the response is byte-identical to the
// library path (gpuleak.Train + NewAttack().Eavesdrop) at any request
// concurrency, which the root-level serving tests pin.
//
// The package deliberately never reads the wall clock (the gpuvet
// simtime gate applies here too): deadlines come from request contexts,
// and the Retry-After hint is a constant.
package serve

import (
	"fmt"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/channel"
	"gpuleak/internal/defense"
	"gpuleak/internal/fault"
	"gpuleak/internal/input"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/sim"
	"gpuleak/internal/victim"

	// Register the built-in side channels so a bare server binary can
	// resolve every advertised channel name.
	_ "gpuleak/internal/kgslchan"
	_ "gpuleak/internal/proccount"
)

// Schema identifies the wire format of every JSON response body.
const Schema = "gpuleak-serve/v1"

// EavesdropRequest is the body of POST /v1/eavesdrop: one victim session
// to simulate and eavesdrop. Empty configuration fields select the
// paper's workhorse setup (OnePlus 8 Pro, Chase, GBoard).
type EavesdropRequest struct {
	Device   string `json:"device,omitempty"`
	App      string `json:"app,omitempty"`
	Keyboard string `json:"keyboard,omitempty"`
	// Text is the credential the simulated victim types (required).
	Text string `json:"text"`
	// Seed drives the victim simulation; the same (config, text, seed)
	// always yields the same response.
	Seed int64 `json:"seed"`
	// Volunteer selects the §7 typing profile (0-4).
	Volunteer int `json:"volunteer,omitempty"`
	// Practical injects §8 behavior: corrections, app switches, glances.
	Practical bool `json:"practical,omitempty"`
	// PretrainedOnly refuses to train on miss: the request fails with 412
	// (gpuleak.ErrModelNotTrained) unless the registry already holds the
	// model.
	PretrainedOnly bool `json:"pretrained_only,omitempty"`
	// TimeoutMS caps this request's deadline. The server's own request
	// timeout still applies; the effective deadline is the smaller.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// FaultProfile names a predefined fault-injection profile
	// (none|mild|moderate|severe) to run the request under; empty disables
	// the fault plane entirely. With a profile set, the sampler runs with
	// the default retry policy and a partially recovered run is answered
	// 200 with "degraded":true instead of a 5xx.
	FaultProfile string `json:"fault_profile,omitempty"`
	// FaultSeed seeds the fault schedule; 0 derives it from Seed, so the
	// same request always faces the same bit-identical schedule.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// Channel names the side channel the run samples; empty means "kgsl",
	// the GPU perf-counter channel. GET /healthz advertises the registered
	// names; unknown ones answer 400.
	Channel string `json:"channel,omitempty"`
	// Channels requests a multi-channel run: the first entry is the
	// primary channel, the second the secondary whose detections are fused
	// into the primary's result (at most two). It overrides Channel.
	// Streaming sessions are single-channel; fusion is one-shot only.
	Channels []string `json:"channels,omitempty"`
	// Defense names a registered defense policy (or a "+"-joined chain)
	// to arm on the victim device before sampling, mirroring fault_profile
	// on the other side of the arms race; empty arms nothing. GET /healthz
	// advertises the registered names; unknown ones answer 400. With a
	// defense armed, the sampler runs with the default retry policy so
	// rate-limit denials degrade the result instead of failing the request.
	Defense string `json:"defense,omitempty"`
	// DefenseStrength is the armed defense's knob in [0, 1]; 0 (the
	// default) arms a passthrough, keeping the response byte-identical to
	// an undefended run.
	DefenseStrength float64 `json:"defense_strength,omitempty"`
	// DefenseSeed seeds the defense's randomness (noise walks, jitter); 0
	// derives it from Seed, so the same request always faces the same
	// bit-identical defense.
	DefenseSeed int64 `json:"defense_seed,omitempty"`
	// PaceMS, honored only by streaming sessions, inserts a wall-clock
	// pause of this many milliseconds after every key/retract frame —
	// a demo/debug knob that makes the stream observable in real time and
	// gives fleet smoke tests a window to kill a replica mid-session. It
	// never affects verdicts: the pacing happens between emissions, outside
	// the sim-time inference. One-shot /v1/eavesdrop ignores it.
	PaceMS int64 `json:"pace_ms,omitempty"`
}

// EavesdropResponse is the result of one served eavesdropping run.
type EavesdropResponse struct {
	Schema string `json:"schema"`
	// Model is the classifier chosen by device recognition.
	Model string `json:"model"`
	// Text is the eavesdropped credential.
	Text string `json:"text"`
	// Truth is the ground truth the simulated victim actually typed.
	Truth string `json:"truth"`
	// Keys is the number of inferred key presses.
	Keys int `json:"keys"`
	// EstimatedLength is the §5.3 echo-redraw length estimate (-1: none).
	EstimatedLength int `json:"estimated_length"`
	// Stats is the online engine's bookkeeping.
	Stats attack.EngineStats `json:"stats"`
	// Degraded reports that the run recovered from injected or real device
	// faults and the result is partial-confidence. Omitted (false) on
	// clean runs, so fault-free responses are byte-identical to the
	// pre-fault-plane wire format.
	Degraded bool `json:"degraded,omitempty"`
	// Recovery details the sampler's recovery work; present only on
	// degraded responses.
	Recovery *attack.CollectStats `json:"recovery,omitempty"`
	// Channel is the primary side channel the run sampled; omitted for the
	// default KGSL channel, keeping legacy responses byte-identical.
	Channel string `json:"channel,omitempty"`
	// Fusion summarizes a multi-channel run; omitted on single-channel
	// runs.
	Fusion *FusionInfo `json:"fusion,omitempty"`
}

// FusionInfo reports what decision-level fusion did on a multi-channel
// run; the response's top-level fields describe the fused result.
type FusionInfo struct {
	// Channels are the registry names of the fused channels, primary
	// first.
	Channels []string `json:"channels"`
	// PrimaryText and SecondaryText are the per-channel single-channel
	// readings the fusion consumed.
	PrimaryText   string `json:"primary_text"`
	SecondaryText string `json:"secondary_text"`
	// Recovered counts keys inserted on secondary evidence; Flipped counts
	// primary verdicts flipped to their alternate.
	Recovered int `json:"recovered"`
	Flipped   int `json:"flipped"`
}

// TrainRequest is the body of POST /v1/train: warm the registry for a
// configuration without running an eavesdrop.
type TrainRequest struct {
	Device   string `json:"device,omitempty"`
	App      string `json:"app,omitempty"`
	Keyboard string `json:"keyboard,omitempty"`
	// Channel selects the side channel to train for; empty means "kgsl".
	Channel   string `json:"channel,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// TrainResponse reports a (possibly cached) trained model.
type TrainResponse struct {
	Schema string `json:"schema"`
	Model  string `json:"model"`
	Keys   int    `json:"keys"`
	Noise  int    `json:"noise"`
	// Cached is true when the model was already resident before this
	// request.
	Cached bool `json:"cached"`
}

// ExperimentRequest is the body of POST /v1/experiment: run one paper
// table/figure by registry ID.
type ExperimentRequest struct {
	ID        string `json:"id"`
	Quick     bool   `json:"quick,omitempty"`
	Seed      int64  `json:"seed"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// ExperimentResponse carries one experiment's table and metrics.
type ExperimentResponse struct {
	Schema  string             `json:"schema"`
	ID      string             `json:"id"`
	Table   string             `json:"table"`
	Metrics map[string]float64 `json:"metrics"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Schema string `json:"schema"`
	// Status is "ok" while serving, "draining" once shutdown began.
	Status string `json:"status"`
	// Models and Training count resident and in-flight registry entries.
	Models   int `json:"models"`
	Training int `json:"training"`
	// Inflight counts requests currently inside the work queues.
	Inflight int `json:"inflight"`
	Shards   int `json:"shards"`
	// Sessions counts resident streaming sessions (created or attached).
	Sessions int `json:"sessions"`
	// Channels lists the registered side-channel names.
	Channels []string `json:"channels"`
	// Defenses lists the registered defense policy names.
	Defenses []string `json:"defenses"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Schema string `json:"schema"`
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// SessionResponse is the body of POST /v1/sessions (201) and
// DELETE /v1/sessions/{id} (200): the session id and, on creation, the
// path to attach its one SSE stream.
type SessionResponse struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	// Stream is the server-relative path of GET /v1/sessions/{id}/stream.
	Stream string `json:"stream,omitempty"`
}

// StreamSchema identifies the wire format of per-event SSE data payloads
// on a session stream. The closing "result" frame carries the one-shot
// EavesdropResponse (Schema gpuleak-serve/v1) instead.
const StreamSchema = "gpuleak-stream/v1"

// StreamEventData is the JSON data payload of one "key" or "retract" SSE
// frame on a session stream: Algorithm 1's incremental output, one frame
// per engine commit or withdrawal. Frames are compact JSON so routers can
// relay them byte-for-byte.
type StreamEventData struct {
	Schema string `json:"schema"`
	// Seq numbers frames from 1 within the stream; it doubles as the SSE
	// id: field, so a router resuming a broken session can skip frames a
	// client already holds.
	Seq uint64 `json:"seq"`
	// AtUS is the sim-time (microseconds) of the delta that triggered the
	// event — the stream's own clock, not the wall.
	AtUS int64 `json:"at_us"`
	// Kind is "key" or "retract".
	Kind string `json:"kind"`
	// Key is the inferred key (Kind "key" only).
	Key string `json:"key,omitempty"`
	// Alt is the runner-up key and Margin the distance gap to it, the §7.1
	// guessing-strategy inputs (Kind "key" only).
	Alt    string  `json:"alt,omitempty"`
	Margin float64 `json:"margin,omitempty"`
	// Keys is how many keys the engine stands behind after this event; a
	// client holding the stream so far can reconstruct the text by
	// appending on "key" and truncating to Keys on "retract".
	Keys int `json:"keys"`
}

// RoutingKey maps an eavesdrop/session request to its model-shard
// identity — the registry key of the trained model the request will
// consult. Replicas agree on it by construction (it is derived purely
// from the request body), which is what lets a fleet router pin every
// request for one model onto one replica and keep the others cold.
func RoutingKey(req EavesdropRequest) (string, error) {
	scen, err := ResolveScenario(req)
	if err != nil {
		return "", err
	}
	return ChannelKey(TrainConfig(scen.Cfg), scen.Primary()), nil
}

// Scenario is a fully resolved eavesdropping request: the victim
// configuration plus the script the simulated user will type. It is the
// server-side mirror of the facade quick start — Script reproduces
// gpuleak.TypeText (or PracticalSession) exactly, which is what makes
// the served result byte-identical to the library path.
type Scenario struct {
	Cfg       victim.Config
	Text      string
	Volunteer int
	Practical bool
	// Fault is the resolved fault-injection profile (zero: no fault
	// plane) and FaultSeed its schedule seed.
	Fault     fault.Profile
	FaultSeed int64
	// Channels are the resolved channel registry names, primary first;
	// empty means the default single-channel KGSL run.
	Channels []string
	// Defense is the resolved defense policy to arm on the session (nil:
	// none), DefenseStrength its knob and DefenseSeed its randomness seed.
	Defense         defense.Policy
	DefenseStrength float64
	DefenseSeed     int64
}

// Primary returns the scenario's primary channel in canonical model-key
// form: the empty string for the default KGSL channel.
func (s Scenario) Primary() string {
	if len(s.Channels) == 0 {
		return ""
	}
	return channel.Canonical(s.Channels[0])
}

// ResolveScenario validates an EavesdropRequest against the device, app
// and keyboard catalogs and materializes the victim configuration the
// facade quick start would build for it.
func ResolveScenario(req EavesdropRequest) (Scenario, error) {
	if req.Text == "" {
		return Scenario{}, fmt.Errorf("%w: empty text", ErrBadRequest)
	}
	if req.Volunteer < 0 || req.Volunteer >= len(input.Volunteers) {
		return Scenario{}, fmt.Errorf("%w: volunteer must be 0-%d", ErrBadRequest, len(input.Volunteers)-1)
	}
	cfg := victim.Config{Seed: req.Seed, RenderJitter: defaultRenderJitter}
	dev := req.Device
	if dev == "" {
		dev = "OnePlus 8 Pro"
	}
	d, ok := android.DeviceByName(dev)
	if !ok {
		return Scenario{}, fmt.Errorf("%w: unknown device %q", ErrBadRequest, req.Device)
	}
	cfg.Device = d
	app := req.App
	if app == "" {
		app = "Chase"
	}
	a, ok := android.AppByName(app)
	if !ok {
		return Scenario{}, fmt.Errorf("%w: unknown app %q", ErrBadRequest, req.App)
	}
	cfg.App = a
	kb := req.Keyboard
	if kb == "" {
		kb = "gboard"
	}
	l := keyboard.ByName(kb)
	if l == nil {
		return Scenario{}, fmt.Errorf("%w: unknown keyboard %q", ErrBadRequest, req.Keyboard)
	}
	cfg.Keyboard = l
	scen := Scenario{Cfg: cfg, Text: req.Text, Volunteer: req.Volunteer, Practical: req.Practical}
	chans := req.Channels
	if len(chans) == 0 && req.Channel != "" {
		chans = []string{req.Channel}
	}
	if len(chans) > 2 {
		return Scenario{}, fmt.Errorf("%w: at most two channels may be fused, got %d", ErrBadRequest, len(chans))
	}
	for _, name := range chans {
		ch, err := channel.Get(name)
		if err != nil {
			// The error matches channel.ErrUnknownChannel, which statusFor
			// maps onto 400.
			return Scenario{}, fmt.Errorf("resolving request channel: %w", err)
		}
		scen.Channels = append(scen.Channels, ch.Name())
	}
	if req.FaultProfile != "" {
		p, ok := fault.ByName(req.FaultProfile)
		if !ok {
			return Scenario{}, fmt.Errorf("%w: unknown fault profile %q (have %v)",
				ErrBadRequest, req.FaultProfile, fault.Names())
		}
		scen.Fault = p
		scen.FaultSeed = req.FaultSeed
		if scen.FaultSeed == 0 {
			scen.FaultSeed = fault.Seed(req.Seed, 0)
		}
		if scen.Primary() != "" {
			return Scenario{}, fmt.Errorf("%w: fault profiles model the KGSL ioctl path; primary channel %q cannot carry one",
				ErrBadRequest, scen.Channels[0])
		}
	}
	if req.Defense != "" {
		p, err := defense.Get(req.Defense)
		if err != nil {
			// The error matches defense.ErrUnknownDefense, which statusFor
			// maps onto 400.
			return Scenario{}, fmt.Errorf("resolving request defense: %w", err)
		}
		if req.DefenseStrength < 0 || req.DefenseStrength > 1 {
			return Scenario{}, fmt.Errorf("%w: defense strength %g outside [0, 1]",
				ErrBadRequest, req.DefenseStrength)
		}
		scen.Defense = p
		scen.DefenseStrength = req.DefenseStrength
		scen.DefenseSeed = req.DefenseSeed
		if scen.DefenseSeed == 0 {
			scen.DefenseSeed = defense.Seed(req.Seed, 0)
		}
	}
	return scen, nil
}

// defaultRenderJitter matches the realistic jitter attackd and the
// experiment layer's DefaultConfig apply to victim sessions.
const defaultRenderJitter = 0.0001

// Script builds the victim input script: exactly what gpuleak.TypeText
// (volunteer 0) or gpuleak.PracticalSession produce for the same text and
// seed, starting 0.7 s after app launch.
func (s Scenario) Script() input.Script {
	vol := input.Volunteers[s.Volunteer]
	rng := sim.NewRand(s.Cfg.Seed)
	if s.Practical {
		return input.Practical(s.Text, vol, input.DefaultPracticalOptions(), rng, 700*sim.Millisecond)
	}
	return input.Typing(s.Text, vol, input.SpeedAny, rng, 700*sim.Millisecond)
}

// TrainSeed is the fixed offline-phase seed: model identity depends only
// on the configuration, never on which request triggered training.
const TrainSeed = 12345

// TrainConfig derives the controlled collection configuration for a
// victim configuration, the same derivation the experiment layer's model
// cache uses: jitter and background load off, fixed seed.
func TrainConfig(cfg victim.Config) victim.Config {
	t := cfg
	t.RenderJitter = 0
	t.CPULoad = 0
	t.GPULoad = 0
	t.Seed = TrainSeed
	return t
}
