package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gpuleak/internal/attack"
	"gpuleak/internal/obs"
)

// Sentinels of the streaming-session lifecycle; the facade re-exports
// them alongside the rest of the error taxonomy.
var (
	// ErrSessionNotFound reports a stream attach (or delete) for a session
	// id the server does not hold: never created, already streamed to
	// completion, idle-reaped, or dropped by a shutdown.
	ErrSessionNotFound = errors.New("serve: session not found")
	// ErrSessionConsumed reports a second attach to a session whose stream
	// is already running or finished: a session is a single-use ticket.
	ErrSessionConsumed = errors.New("serve: session stream already consumed")
)

// sessionState tracks a session through its single-use lifecycle.
type sessionState int

const (
	sessionCreated sessionState = iota
	sessionStreaming
	sessionDone
)

// session is one registered streaming eavesdrop: the resolved request,
// waiting for its one stream attach. Per-session state is bounded by
// construction — the request, the scenario, and lifecycle bookkeeping;
// verdicts are written straight to the attached stream, never buffered
// per session.
type session struct {
	id   string
	req  EavesdropRequest
	scen Scenario
	// seq is the table's logical creation clock; the oldest never-attached
	// session is evicted first when the table is full.
	seq      uint64
	state    sessionState
	stopIdle func()
	// trace is the session's trace context, captured at create time: the
	// router forwards the traceparent on the create POST (and on every
	// failover replay), while the stream attach carries no header — so a
	// replayed session keeps recording under its original trace id.
	trace obs.TraceContext
}

// sessionTable is the bounded registry of live sessions. Boundedness has
// two layers: a hard cap with oldest-unattached eviction (a logical-clock
// policy, so the serving package stays wall-clock-free), plus an optional
// per-session idle timer the daemon injects (Options.SessionTimer).
type sessionTable struct {
	mu     sync.Mutex
	byID   map[string]*session
	cap    int
	nextID uint64
	seq    uint64
}

func newSessionTable(cap int) *sessionTable {
	return &sessionTable{byID: map[string]*session{}, cap: cap}
}

// create registers a session, evicting the oldest never-attached one if
// the table is full. It fails with ErrBusy when every resident session is
// already streaming.
func (t *sessionTable) create(req EavesdropRequest, scen Scenario, trace obs.TraceContext) (*session, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	evicted := false
	if len(t.byID) >= t.cap {
		var victim *session
		for _, s := range t.byID {
			if s.state != sessionCreated {
				continue
			}
			if victim == nil || s.seq < victim.seq {
				victim = s
			}
		}
		if victim == nil {
			return nil, false, fmt.Errorf("sessions: %d registered, all streaming: %w", len(t.byID), ErrBusy)
		}
		delete(t.byID, victim.id)
		if victim.stopIdle != nil {
			victim.stopIdle()
		}
		evicted = true
	}
	t.nextID++
	t.seq++
	s := &session{
		id:    fmt.Sprintf("s-%08d", t.nextID),
		req:   req,
		scen:  scen,
		seq:   t.seq,
		trace: trace,
	}
	t.byID[s.id] = s
	return s, evicted, nil
}

// claim transitions a session from created to streaming, enforcing the
// single-use contract.
func (t *sessionTable) claim(id string) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.byID[id]
	if !ok {
		return nil, fmt.Errorf("session %q: %w", id, ErrSessionNotFound)
	}
	if s.state != sessionCreated {
		return nil, fmt.Errorf("session %q: %w", id, ErrSessionConsumed)
	}
	s.state = sessionStreaming
	if s.stopIdle != nil {
		s.stopIdle()
		s.stopIdle = nil
	}
	return s, nil
}

// unclaim reverts a claim that could not start streaming (the server
// began draining between claim and admission).
func (t *sessionTable) unclaim(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byID[id]; ok && s.state == sessionStreaming {
		s.state = sessionCreated
	}
}

// finish retires a streamed session from the table.
func (t *sessionTable) finish(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byID[id]; ok {
		s.state = sessionDone
		delete(t.byID, s.id)
	}
}

// drop removes a session only while it is still unattached; the idle
// reaper and DELETE /v1/sessions/{id} both land here.
func (t *sessionTable) drop(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.byID[id]
	if !ok || s.state != sessionCreated {
		return false
	}
	if s.stopIdle != nil {
		s.stopIdle()
	}
	delete(t.byID, id)
	return true
}

// stats reports resident and currently-streaming session counts.
func (t *sessionTable) stats() (resident, streaming int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.byID {
		if s.state == sessionStreaming {
			streaming++
		}
	}
	return len(t.byID), streaming
}

// clear empties the table (shutdown: unattached sessions are dropped;
// attached ones are tracked by the in-flight drain, not the table).
func (t *sessionTable) clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, s := range t.byID {
		if s.stopIdle != nil {
			s.stopIdle()
		}
		delete(t.byID, id)
	}
}

// handleSessionCreate serves POST /v1/sessions: validate the eavesdrop
// request now (so a bad request fails fast, not at attach time), register
// the session, and hand back the stream path. The run itself starts when
// the client attaches — a registered session costs only its bookkeeping.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req EavesdropRequest
	if err := decode(r, &req); err != nil {
		s.failRequest(w, mErrorsSession, err)
		return
	}
	scen, err := ResolveScenario(req)
	if err != nil {
		s.failRequest(w, mErrorsSession, err)
		return
	}
	if len(scen.Channels) > 1 {
		s.failRequest(w, mErrorsSession, fmt.Errorf(
			"%w: streaming sessions are single-channel; use POST /v1/eavesdrop for fusion", ErrBadRequest))
		return
	}
	if s.Draining() {
		s.failRequest(w, mErrorsSession, ErrDraining)
		return
	}
	sess, evicted, err := s.sessions.create(req, scen, traceFor(r, req.Seed))
	if err != nil {
		s.failRequest(w, mErrorsSession, err)
		return
	}
	if evicted {
		s.m.Add(mSessionsEvicted, 1)
	}
	if s.opts.SessionTimer != nil {
		id := sess.id
		stop := s.opts.SessionTimer(func() {
			if s.sessions.drop(id) {
				s.m.Add(mSessionsIdleReaped, 1)
			}
		})
		s.sessions.mu.Lock()
		// The timer may have fired (and dropped the session) before we got
		// here; only arm the stop hook while the session is still resident.
		if cur, ok := s.sessions.byID[id]; ok && cur == sess {
			sess.stopIdle = stop
		} else if stop != nil {
			stop()
		}
		s.sessions.mu.Unlock()
	}
	s.m.Add(mSessionsCreated, 1)
	writeJSON(w, http.StatusCreated, SessionResponse{
		Schema: Schema,
		ID:     sess.id,
		Stream: "/v1/sessions/" + sess.id + "/stream",
	})
}

// handleSessionDelete serves DELETE /v1/sessions/{id}: cancel a session
// that has not attached its stream yet.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.drop(id) {
		s.failRequest(w, mErrorsSession, fmt.Errorf("session %q: %w", id, ErrSessionNotFound))
		return
	}
	s.m.Add(mSessionsCanceled, 1)
	writeJSON(w, http.StatusOK, SessionResponse{Schema: Schema, ID: id})
}

// handleSessionStream serves GET /v1/sessions/{id}/stream: the session's
// one SSE attach. Setup failures (unknown session, draining, training
// errors) are answered as plain JSON errors before any stream bytes are
// written; once the stream opens, the response is a sequence of SSE
// frames — "open", then "key"/"retract" verdicts as Algorithm 1 emits
// them, closed by a "result" frame whose data is byte-identical (modulo
// JSON whitespace) to the one-shot /v1/eavesdrop response body for the
// same request, or an "error" frame if sampling failed mid-run.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.claim(r.PathValue("id"))
	if err != nil {
		s.failRequest(w, mErrorsStream, err)
		return
	}
	if err := s.begin(); err != nil {
		s.sessions.unclaim(sess.id)
		s.failRequest(w, mErrorsStream, err)
		return
	}
	defer s.end()
	defer s.sessions.finish(sess.id)
	ctx, cancel := s.requestContext(r, sess.req.TimeoutMS)
	defer cancel()
	tc := sess.trace
	ctx = obs.WithTraceContext(ctx, tc)

	st := &sseStream{w: w, sessionID: sess.id, trace: tc.Local()}
	if f, ok := w.(http.Flusher); ok {
		st.flush = f
	}
	pace := time.Duration(sess.req.PaceMS) * time.Millisecond
	err = s.do(ctx, s.reg.ShardFor(ChannelKey(TrainConfig(sess.scen.Cfg), sess.scen.Primary())), func(ctx context.Context) error {
		resp, err := s.runEavesdrop(ctx, sess.scen, sess.req, func(ev attack.StreamEvent) error {
			if err := st.event(ev); err != nil {
				return err
			}
			if pace > 0 && s.opts.Pacer != nil {
				s.opts.Pacer(ctx, pace)
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			return nil
		}, mLatencyStream)
		if err != nil {
			return err
		}
		return st.result(resp)
	})
	if err != nil {
		if !st.started {
			s.failRequest(w, mErrorsStream, err)
			return
		}
		// The stream is already flowing: the failure travels in-band.
		st.fail(err, statusFor(err))
		s.m.Add(mErrors, 1)
		s.m.Add(mErrorsStream, 1)
		return
	}
	s.m.Add(mSessionsStreamed, 1)
}
