package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gpuleak/internal/attack"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
)

// batchModel is a synthetic classifier with enough structure to exercise
// every ClassifyDenoised branch: key hits, noise hits, denoised compound
// hits, and unknowns.
func batchModel() *attack.Model {
	vec := func(vals ...float64) trace.Vec {
		var v trace.Vec
		copy(v[:], vals)
		return v
	}
	return &attack.Model{
		Key:      attack.ModelKey{Device: "batch-test", Keyboard: "test"},
		Weights:  trace.Ones(),
		Cth:      12,
		NoiseTol: 4,
		Keys: map[string]trace.Vec{
			"a": vec(100, 40, 10, 1000),
			"b": vec(160, 70, 25, 1400),
			"c": vec(220, 95, 40, 1900),
		},
		Noise: []attack.NoiseCentroid{
			{Class: attack.NoisePopupHide, V: vec(90, 35, 8, 900)},
			{Class: attack.NoiseEcho, V: vec(6, 2, 1, 90)},
		},
		Launch: vec(500, 200, 50, 5000),
	}
}

// batchInputs builds a deterministic spread of (sim-time, vector) jobs:
// perturbed key centroids, noise, compounds, and garbage, with timestamps
// spanning several coalescing windows.
func batchInputs(n int) ([]sim.Time, []trace.Vec) {
	ats := make([]sim.Time, n)
	vecs := make([]trace.Vec, n)
	base := [][4]float64{
		{100, 40, 10, 1000},  // key a
		{160, 70, 25, 1400},  // key b
		{6, 2, 1, 90},        // echo noise
		{106, 42, 11, 1090},  // a + echo compound
		{400, 400, 400, 400}, // garbage
	}
	for i := 0; i < n; i++ {
		b := base[i%len(base)]
		var v trace.Vec
		for d := 0; d < 4; d++ {
			v[d] = b[d] + float64((i*7+d*3)%5)
		}
		vecs[i] = v
		ats[i] = sim.Time(i) * 3 * sim.Millisecond
	}
	return ats, vecs
}

// TestBatcherIdentity pins the micro-batcher's whole contract: for every
// coalescing window and batch cap, under concurrent submission from many
// goroutines, every verdict equals the direct ClassifyDenoised call for
// the same vector. Batch composition shapes dispatch, never results.
func TestBatcherIdentity(t *testing.T) {
	m := batchModel()
	ats, vecs := batchInputs(200)
	want := make([]attack.Verdict, len(vecs))
	for i, v := range vecs {
		want[i] = m.ClassifyDenoised(v)
	}
	windows := []sim.Time{0, sim.Millisecond, 8 * sim.Millisecond, sim.Second}
	maxes := []int{1, 4, 16}
	for _, w := range windows {
		for _, max := range maxes {
			t.Run(fmt.Sprintf("window=%d/max=%d", w, max), func(t *testing.T) {
				b := NewBatcher(2, w, max, obs.NewMetrics())
				defer b.Close()
				var wg sync.WaitGroup
				for i := range vecs {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						got := b.Classify(i%3, m, ats[i], vecs[i])
						if got != want[i] {
							t.Errorf("job %d: batched %+v != direct %+v", i, got, want[i])
						}
					}(i)
				}
				wg.Wait()
			})
		}
	}
}

// TestBatcherCoalesces pins that the batcher actually batches: with an
// unbounded window and concurrent submitters, at least one flush carries
// more than one job (and the job count always reconciles).
func TestBatcherCoalesces(t *testing.T) {
	m := batchModel()
	_, vecs := batchInputs(64)
	met := obs.NewMetrics()
	b := NewBatcher(1, sim.Second, 16, met)
	defer b.Close()
	deadline := time.Now().Add(10 * time.Second)
	var total int64
	for met.Snapshot()["serve.batch.coalesced"] < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no coalesced flush after %d jobs (snapshot %v)", total, met.Snapshot())
		}
		var wg sync.WaitGroup
		for i := range vecs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				b.Classify(0, m, 0, vecs[i])
			}(i)
		}
		wg.Wait()
		total += int64(len(vecs))
	}
	if jobs := met.Snapshot()["serve.batch.jobs"]; jobs != float64(total) {
		t.Fatalf("serve.batch.jobs = %v, want %v", jobs, total)
	}
}

// TestBatcherWindowSplitsFlushes pins the window rule: jobs whose
// timestamps are farther apart than the window may not share a flush, so
// with a zero window and distinct timestamps queued behind a parked
// dispatcher, every flush carries exactly one job.
func TestBatcherWindowSplitsFlushes(t *testing.T) {
	m := batchModel()
	met := obs.NewMetrics()
	b := NewBatcher(1, 0, 16, met)
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Classify(0, m, sim.Time(i)*sim.Millisecond, trace.Vec{})
		}(i)
	}
	wg.Wait()
	snap := met.Snapshot()
	if snap["serve.batch.coalesced"] != 0 {
		t.Fatalf("zero-window batcher coalesced distinct timestamps: %v", snap)
	}
	if snap["serve.batch.jobs"] != 8 || snap["serve.batch.flushes"] != 8 {
		t.Fatalf("jobs/flushes = %v/%v, want 8/8",
			snap["serve.batch.jobs"], snap["serve.batch.flushes"])
	}
}
