package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/obs"
	"gpuleak/internal/victim"
)

// cfgForApp builds a victim configuration whose registry key differs only
// in the target app — the cheapest way to mint distinct keys that all
// land wherever the test routes them.
func cfgForApp(name string) victim.Config {
	return victim.Config{
		Device: android.OnePlus8Pro,
		App:    &android.App{Name: name},
	}
}

// fakeTrain returns a TrainFunc that stamps the app name into the model
// (so tests can check each Get got the right classifier) and counts
// invocations per key.
func fakeTrain(calls *sync.Map) TrainFunc {
	return func(ctx context.Context, cfg victim.Config, channel string) (*attack.Model, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		k := ChannelKey(cfg, channel)
		n, _ := calls.LoadOrStore(k, new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
		return &attack.Model{Key: attack.ModelKey{Device: cfg.App.Name}}, nil
	}
}

// TestRegistrySingleflight pins the dedup contract: many concurrent
// misses on the same key train exactly once.
func TestRegistrySingleflight(t *testing.T) {
	var calls sync.Map
	r := NewRegistry(1, 8, fakeTrain(&calls), obs.NewMetrics())
	cfg := cfgForApp("solo")

	const waiters = 32
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := r.Get(context.Background(), cfg)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if m.Key.Device != "solo" {
				t.Errorf("Get returned model %q, want %q", m.Key.Device, "solo")
			}
		}()
	}
	wg.Wait()

	n, ok := calls.Load(Key(cfg))
	if !ok || n.(*atomic.Int64).Load() != 1 {
		t.Fatalf("train ran %v times for one key, want exactly 1", n)
	}
}

// TestRegistryRaceHammer churns one shard through concurrent
// miss-train-evict cycles: a single shard with capacity 2 serving 8
// distinct keys from 16 goroutines forces constant eviction and
// retraining while hits, misses and in-flight waits interleave. Run
// under -race this is the memory-safety proof of the singleflight
// entry lifecycle; the assertions pin that every caller still gets the
// model matching its key.
func TestRegistryRaceHammer(t *testing.T) {
	var calls sync.Map
	r := NewRegistry(1, 2, fakeTrain(&calls), obs.NewMetrics())

	const (
		keys       = 8
		goroutines = 16
		iters      = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				app := fmt.Sprintf("app%d", (g+i)%keys)
				m, err := r.Get(context.Background(), cfgForApp(app))
				if err != nil {
					t.Errorf("Get(%s): %v", app, err)
					return
				}
				if m.Key.Device != app {
					t.Errorf("Get(%s) returned model %q", app, m.Key.Device)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	models, training := r.Stats()
	if training != 0 {
		t.Fatalf("training = %d after quiescence, want 0", training)
	}
	if models > 2 {
		t.Fatalf("models resident = %d, above shard cap 2", models)
	}
	if Evictions() == 0 {
		t.Fatal("hammering 8 keys through a cap-2 shard evicted nothing")
	}
}

// TestRegistryFailureNotCached pins the retry contract: a failed
// training is dropped from the shard so the next Get retrains instead of
// replaying the stale error.
func TestRegistryFailureNotCached(t *testing.T) {
	boom := errors.New("collector exploded")
	var attempts atomic.Int64
	r := NewRegistry(1, 4, func(ctx context.Context, cfg victim.Config, _ string) (*attack.Model, error) {
		if attempts.Add(1) == 1 {
			return nil, boom
		}
		return &attack.Model{}, nil
	}, obs.NewMetrics())
	cfg := cfgForApp("flaky")

	if _, err := r.Get(context.Background(), cfg); !errors.Is(err, boom) {
		t.Fatalf("first Get: %v, want wrapped %v", err, boom)
	}
	if _, err := r.Get(context.Background(), cfg); err != nil {
		t.Fatalf("second Get should retrain after a failure: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("train attempts = %d, want 2", got)
	}
}

// TestRegistryLookupMiss pins the pretrained-only contract: Lookup never
// trains, never waits, and fails with the stable sentinel — including
// while a training for the same key is in flight.
func TestRegistryLookupMiss(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	r := NewRegistry(1, 4, func(ctx context.Context, cfg victim.Config, _ string) (*attack.Model, error) {
		close(started)
		<-release
		return &attack.Model{}, nil
	}, obs.NewMetrics())
	cfg := cfgForApp("pending")

	if _, err := r.Lookup(cfg); !errors.Is(err, attack.ErrModelNotTrained) {
		t.Fatalf("Lookup on cold registry: %v, want ErrModelNotTrained", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := r.Get(context.Background(), cfg)
		done <- err
	}()
	<-started
	if _, err := r.Lookup(cfg); !errors.Is(err, attack.ErrModelNotTrained) {
		t.Fatalf("Lookup during in-flight training: %v, want ErrModelNotTrained", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, err := r.Lookup(cfg); err != nil {
		t.Fatalf("Lookup after training: %v", err)
	}
}

// TestRegistryGetCanceledWaiter pins that a waiter abandons an in-flight
// training when its context dies, without disturbing the training itself.
func TestRegistryGetCanceledWaiter(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	r := NewRegistry(1, 4, func(ctx context.Context, cfg victim.Config, _ string) (*attack.Model, error) {
		close(started)
		<-release
		return &attack.Model{}, nil
	}, obs.NewMetrics())
	cfg := cfgForApp("slow")

	go r.Get(context.Background(), cfg) //nolint:errcheck // released below
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Get(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: %v, want context.Canceled", err)
	}

	close(release)
	if _, err := r.Get(context.Background(), cfg); err != nil {
		t.Fatalf("Get after release: %v", err)
	}
}
