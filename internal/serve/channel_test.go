package serve

// Tests of the HTTP channel surface: channel selection on eavesdrop and
// train, the unknown-channel 400 contract, healthz advertising, and the
// one-shot fusion path.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpuleak/internal/proccount"
)

func TestChannelUnknownAnswers400(t *testing.T) {
	s := NewServer(Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, body := range []string{
		`{"text":"abc","seed":1,"channel":"vbus"}`,
		`{"text":"abc","seed":1,"channels":["kgsl","vbus"]}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/eavesdrop", body)
		er := decodeBody[ErrorResponse](t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400 (%s)", body, resp.StatusCode, er.Error)
		}
		if !strings.Contains(er.Error, "unknown channel") {
			t.Errorf("body %s: error %q does not name the unknown channel", body, er.Error)
		}
	}
	resp := postJSON(t, ts.URL+"/v1/train", `{"channel":"vbus"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("train with unknown channel: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthzAdvertisesChannels(t *testing.T) {
	s := NewServer(Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr := decodeBody[HealthResponse](t, resp)
	found := map[string]bool{}
	for _, name := range hr.Channels {
		found[name] = true
	}
	if !found["kgsl"] || !found[proccount.Name] {
		t.Fatalf("healthz channels %v missing a built-in", hr.Channels)
	}
}

func TestEavesdropProccountChannel(t *testing.T) {
	s := NewServer(Options{Shards: 1, TrainWorkers: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/eavesdrop", `{"text":"abc123","seed":5,"channel":"proccount"}`)
	if resp.StatusCode != http.StatusOK {
		er := decodeBody[ErrorResponse](t, resp)
		t.Fatalf("status %d: %s", resp.StatusCode, er.Error)
	}
	er := decodeBody[EavesdropResponse](t, resp)
	if er.Channel != proccount.Name {
		t.Errorf("response channel %q, want %q", er.Channel, proccount.Name)
	}
	if !strings.Contains(er.Model, ":"+proccount.Name) {
		t.Errorf("model key %q does not carry the channel tag", er.Model)
	}
	// The OS-counter channel resolves key families, not keys: it must
	// still detect one press per typed character.
	if er.Keys != len("abc123") {
		t.Errorf("detected %d presses, want %d", er.Keys, len("abc123"))
	}
}

func TestEavesdropFusionUnderStarve(t *testing.T) {
	s := NewServer(Options{Shards: 1, TrainWorkers: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := `{"text":"hunter2","seed":9,"channels":["kgsl","proccount"],"fault_profile":"starve"}`
	resp := postJSON(t, ts.URL+"/v1/eavesdrop", body)
	if resp.StatusCode != http.StatusOK {
		er := decodeBody[ErrorResponse](t, resp)
		t.Fatalf("status %d: %s", resp.StatusCode, er.Error)
	}
	er := decodeBody[EavesdropResponse](t, resp)
	if er.Fusion == nil {
		t.Fatal("multi-channel response missing fusion info")
	}
	if len(er.Fusion.Channels) != 2 || er.Fusion.Channels[0] != "kgsl" {
		t.Errorf("fusion channels = %v", er.Fusion.Channels)
	}
	if er.Channel != "" {
		t.Errorf("kgsl-primary response tagged channel %q; default must stay empty", er.Channel)
	}
	if er.Truth != "hunter2" {
		t.Errorf("truth %q", er.Truth)
	}

	// Determinism: the same request replays byte-identically.
	resp2 := postJSON(t, ts.URL+"/v1/eavesdrop", body)
	er2 := decodeBody[EavesdropResponse](t, resp2)
	if er2.Text != er.Text || er2.Fusion.Recovered != er.Fusion.Recovered || er2.Fusion.Flipped != er.Fusion.Flipped {
		t.Errorf("fusion replay diverged: %+v vs %+v", er2.Fusion, er.Fusion)
	}
}

func TestSessionCreateRejectsMultiChannel(t *testing.T) {
	s := NewServer(Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/sessions", `{"text":"abc","seed":1,"channels":["kgsl","proccount"]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("multi-channel session create: status %d, want 400", resp.StatusCode)
	}
	// A single named channel is fine.
	resp = postJSON(t, ts.URL+"/v1/sessions", `{"text":"abc","seed":1,"channel":"proccount"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("single-channel session create: status %d, want 201", resp.StatusCode)
	}
}
