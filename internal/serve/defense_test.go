package serve

// Tests of the HTTP defense surface: the unknown-defense 400 contract,
// strength validation, healthz advertising, the zero-strength
// passthrough identity, and a defended run degrading instead of failing.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpuleak/internal/defense"
)

func TestDefenseUnknownAnswers400(t *testing.T) {
	s := NewServer(Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, body := range []string{
		`{"text":"abc","seed":1,"defense":"scramble"}`,
		`{"text":"abc","seed":1,"defense":"quantize+scramble"}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/eavesdrop", body)
		er := decodeBody[ErrorResponse](t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400 (%s)", body, resp.StatusCode, er.Error)
		}
		if !strings.Contains(er.Error, "unknown defense") {
			t.Errorf("body %s: error %q does not name the unknown defense", body, er.Error)
		}
	}

	resp := postJSON(t, ts.URL+"/v1/eavesdrop", `{"text":"abc","seed":1,"defense":"quantize","defense_strength":1.5}`)
	er := decodeBody[ErrorResponse](t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range strength: status %d, want 400 (%s)", resp.StatusCode, er.Error)
	}
}

func TestHealthzAdvertisesDefenses(t *testing.T) {
	s := NewServer(Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr := decodeBody[HealthResponse](t, resp)
	found := map[string]bool{}
	for _, name := range hr.Defenses {
		found[name] = true
	}
	for _, want := range defense.Names() {
		if !found[want] {
			t.Errorf("healthz defenses %v missing registered defense %q", hr.Defenses, want)
		}
	}
}

func TestEavesdropDefenseZeroStrengthIsPassthrough(t *testing.T) {
	s := NewServer(Options{Shards: 1, TrainWorkers: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	read := func(body string) string {
		resp := postJSON(t, ts.URL+"/v1/eavesdrop", body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("body %s: status %d", body, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	undefended := read(`{"text":"abc123","seed":5}`)
	zero := read(`{"text":"abc123","seed":5,"defense":"noise","defense_strength":0}`)
	if undefended != zero {
		t.Errorf("zero-strength defense changed the response:\nundefended: %s\nzero:       %s", undefended, zero)
	}
}

func TestEavesdropDefendedDegradesNotFails(t *testing.T) {
	s := NewServer(Options{Shards: 1, TrainWorkers: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Full-strength rate limiting starves the sampler to a few reads per
	// second: the retry machinery must absorb the denials and answer 200
	// with a (likely wrong) result, never a 5xx.
	resp := postJSON(t, ts.URL+"/v1/eavesdrop", `{"text":"abc123","seed":5,"defense":"ratelimit","defense_strength":1}`)
	if resp.StatusCode != http.StatusOK {
		er := decodeBody[ErrorResponse](t, resp)
		t.Fatalf("status %d: %s", resp.StatusCode, er.Error)
	}
	er := decodeBody[EavesdropResponse](t, resp)
	if !er.Degraded {
		t.Error("a rate-limited run must report degraded: the sampler dropped starved ticks")
	}
	if er.Text == er.Truth {
		t.Logf("note: defended run still inferred the exact credential %q", er.Truth)
	}
}
