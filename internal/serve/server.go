package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gpuleak/internal/attack"
	"gpuleak/internal/channel"
	"gpuleak/internal/defense"
	"gpuleak/internal/exp"
	"gpuleak/internal/fault"
	"gpuleak/internal/kgsl"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// Sentinels of the serving layer; the facade re-exports them so clients
// never import this package.
var (
	// ErrBusy reports a full per-shard work queue: the request was
	// rejected with 429 instead of queueing unboundedly. Retry after the
	// Retry-After hint.
	ErrBusy = errors.New("serve: shard work queue full")
	// ErrBadRequest reports an unresolvable request (unknown device, app,
	// keyboard, empty text, bad volunteer index).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrDraining reports a request received after shutdown began.
	ErrDraining = errors.New("serve: server draining")
)

// retryAfterSeconds is the constant Retry-After hint on 429/503 replies.
// A constant (rather than a queue-derived estimate) keeps the package
// free of wall-clock reads; clients treat it as a floor, not a promise.
const retryAfterSeconds = "1"

// Options tunes a Server. The zero value serves with 4 shards, 8 models
// per shard, 2 workers + 8 waiters per shard queue, and no server-side
// request timeout.
type Options struct {
	// Shards is the number of registry shards and work queues.
	Shards int
	// CachePerShard caps resident trained models per shard (LRU beyond).
	CachePerShard int
	// WorkersPerShard bounds how many requests of one shard execute
	// concurrently.
	WorkersPerShard int
	// QueuePerShard bounds how many admitted requests may wait per shard;
	// admission beyond workers+queue is rejected with 429 + Retry-After.
	QueuePerShard int
	// TrainWorkers is the collection worker count for on-miss training
	// (0 = one per CPU). Never part of the model identity: models are
	// byte-identical at any worker count.
	TrainWorkers int
	// TrainRepeats is the offline phase's per-key repeat count (default 2,
	// matching the experiment layer's model cache).
	TrainRepeats int
	// RequestTimeout caps every request's deadline; clients may only
	// shorten it (timeout_ms). Zero means no server-side cap.
	RequestTimeout time.Duration
	// Metrics receives serving counters and registry statistics; nil
	// inherits Obs's registry when a tracer is set, else allocates a
	// fresh one (exposed at /metrics either way).
	Metrics *obs.Metrics
	// Obs, when non-nil, records per-request trace spans: every request
	// gets a child tracer on its trace's track ("trace/<trace-id>"), so
	// filtering an exported stream by track yields exactly one request's
	// trace. Nil disables span recording; RED metrics still flow.
	Obs *obs.Tracer
	// MaxSessions caps resident streaming sessions (default 64). At the
	// cap, creating a session evicts the oldest never-attached one; when
	// every resident session is actively streaming, creation answers 429.
	MaxSessions int
	// SessionTimer, when non-nil, arms an idle timer per created session:
	// it must schedule reap to run once after the daemon's idle deadline
	// and return a stop function. The hook keeps wall-clock ownership in
	// cmd/gpuleakd — this package stays simtime-clean. Nil disables idle
	// reaping (the MaxSessions eviction policy still bounds state).
	SessionTimer func(reap func()) (stop func())
	// Pacer, when non-nil, implements the stream pacing requested by a
	// session's pace_ms: it must block for about d or until ctx is done.
	// Injected by the daemon for the same wall-clock reason as
	// SessionTimer. Nil ignores pace_ms.
	Pacer func(ctx context.Context, d time.Duration)
	// BatchWindow is the micro-batcher's sim-time coalescing window: only
	// pending classifications whose delta timestamps lie within it may
	// share one flush. Meaningful only with BatchMax > 0.
	BatchWindow sim.Time
	// BatchMax caps one micro-batch flush; 0 disables cross-request
	// batching entirely (every request classifies inline).
	BatchMax int
}

func (o Options) withDefaults() Options {
	if o.Shards < 1 {
		o.Shards = 4
	}
	if o.CachePerShard < 1 {
		o.CachePerShard = 8
	}
	if o.WorkersPerShard < 1 {
		o.WorkersPerShard = 2
	}
	if o.QueuePerShard < 1 {
		o.QueuePerShard = 8
	}
	if o.TrainRepeats < 1 {
		o.TrainRepeats = 2
	}
	if o.Metrics == nil {
		if o.Obs != nil {
			o.Metrics = o.Obs.Metrics()
		} else {
			o.Metrics = obs.NewMetrics()
		}
	}
	if o.MaxSessions < 1 {
		o.MaxSessions = 64
	}
	return o
}

// workShard is one bounded work queue. admit caps the total number of
// requests in the system for this shard (executing + waiting); run caps
// concurrent execution. Admission is non-blocking — a full admit channel
// is the 429 signal — while the run slot is awaited under the request's
// context, so a queued request either runs or times out, never hangs.
type workShard struct {
	admit chan struct{}
	run   chan struct{}
}

// Server is the HTTP serving layer: a model registry, per-shard bounded
// work queues, and the /v1 endpoints. Create with NewServer, expose with
// Handler, stop with Shutdown (drains in-flight runs).
type Server struct {
	opts     Options
	reg      *Registry
	work     []*workShard
	mux      *http.ServeMux
	m        *obs.Metrics
	sessions *sessionTable
	batcher  *Batcher // nil when Options.BatchMax == 0
	// shardGauge holds the precomputed per-shard queue-depth gauge names
	// ("serve.shard<i>.queued"), so /metrics scrapes never format strings.
	shardGauge []string

	mu       sync.Mutex
	inflight int
	draining bool
	idle     chan struct{} // closed when draining and inflight == 0
}

// NewServer builds a serving layer over the attack pipeline.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		m:        opts.Metrics,
		mux:      http.NewServeMux(),
		idle:     make(chan struct{}),
		sessions: newSessionTable(opts.MaxSessions),
	}
	if opts.BatchMax > 0 {
		s.batcher = NewBatcher(opts.Shards, opts.BatchWindow, opts.BatchMax, opts.Metrics)
	}
	s.reg = NewRegistry(opts.Shards, opts.CachePerShard, func(ctx context.Context, cfg victim.Config, ch string) (*attack.Model, error) {
		return attack.CollectContext(ctx, cfg, attack.CollectOptions{
			Repeats: opts.TrainRepeats,
			Workers: opts.TrainWorkers,
			Channel: ch,
		})
	}, opts.Metrics)
	for i := 0; i < opts.Shards; i++ {
		s.work = append(s.work, &workShard{
			admit: make(chan struct{}, opts.WorkersPerShard+opts.QueuePerShard),
			run:   make(chan struct{}, opts.WorkersPerShard),
		})
		s.shardGauge = append(s.shardGauge, fmt.Sprintf("serve.shard%d.queued", i))
	}
	s.mux.HandleFunc("POST /v1/eavesdrop", s.handleEavesdrop)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleSessionStream)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/train", s.handleTrain)
	s.mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Registry exposes the server's model registry (for warm-up and tests).
func (s *Server) Registry() *Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// begin admits one request into the in-flight set; it fails once Shutdown
// has been called.
func (s *Server) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	s.inflight++
	return nil
}

// end retires one request and signals Shutdown when the last one drains.
func (s *Server) end() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		close(s.idle)
	}
}

// Shutdown stops admitting requests and blocks until every in-flight
// Algorithm-1 run has drained, or ctx expires. It is idempotent only in
// the sense that the first call wins; serve it once from the signal path.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		if s.inflight == 0 {
			close(s.idle)
		}
	}
	s.mu.Unlock()
	// Unattached sessions will never run: drop them now so their idle
	// timers stop. Attached streams are in the in-flight count and drain
	// like any other request.
	s.sessions.clear()
	select {
	case <-s.idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// Close releases the server's background resources (the micro-batch
// dispatchers). Call it after a clean Shutdown — it assumes no Classify
// call is still in flight.
func (s *Server) Close() {
	if s.batcher != nil {
		s.batcher.Close()
	}
}

// Draining reports whether Shutdown has been initiated.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Inflight reports the number of requests currently admitted.
func (s *Server) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// do runs fn through shard's bounded work queue under the request's
// context. The queue never blocks admission: a full shard answers ErrBusy
// immediately, and an admitted request waits for an execution slot only
// as long as its context lives.
func (s *Server) do(ctx context.Context, shard int, fn func(context.Context) error) error {
	ws := s.work[shard]
	select {
	case ws.admit <- struct{}{}:
	default:
		s.m.Add(mRejected, 1)
		return fmt.Errorf("shard %d (%d in system): %w", shard, cap(ws.admit), ErrBusy)
	}
	defer func() { <-ws.admit }()
	s.m.Add(mAdmitted, 1)
	select {
	case ws.run <- struct{}{}:
	case <-ctx.Done():
		s.m.Add(mQueueTimeouts, 1)
		return fmt.Errorf("serve: queued on shard %d: %w", shard, ctx.Err())
	}
	defer func() { <-ws.run }()
	return fn(ctx)
}

// requestContext applies the server cap and the client hint (whichever is
// smaller) to the request context.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	d := s.opts.RequestTimeout
	if timeoutMS > 0 {
		if c := time.Duration(timeoutMS) * time.Millisecond; d == 0 || c < d {
			d = c
		}
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// statusFor maps the error taxonomy onto HTTP statuses. A retryable
// sampling failure (the device plane was faulting harder than the retry
// policy could absorb) answers 503 + Retry-After — the device may
// recover — while non-retryable sampling failures fall through to their
// driver sentinel (EPERM → 403: an active mitigation, not a transient).
func statusFor(err error) int {
	var se *attack.SampleError
	switch {
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, channel.ErrUnknownChannel):
		return http.StatusBadRequest
	case errors.Is(err, defense.ErrUnknownDefense), errors.Is(err, defense.ErrStrength):
		return http.StatusBadRequest
	case errors.Is(err, ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrSessionConsumed):
		return http.StatusConflict
	case errors.Is(err, exp.ErrUnknownExperiment):
		return http.StatusNotFound
	case errors.Is(err, attack.ErrModelNotTrained):
		return http.StatusPreconditionFailed
	case errors.As(err, &se) && se.Retryable():
		return http.StatusServiceUnavailable
	case errors.Is(err, kgsl.ErrPerm), errors.Is(err, kgsl.ErrDeviceAccess):
		// A mitigated device refused the counter interface (§9).
		return http.StatusForbidden
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone: nothing left to report to
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	s.m.Add(mErrors, 1)
	writeJSON(w, status, ErrorResponse{Schema: Schema, Error: err.Error(), Status: status})
}

func decode[T any](r *http.Request, into *T) error {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		return fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err)
	}
	return nil
}

// handleEavesdrop serves POST /v1/eavesdrop: resolve the scenario, fetch
// (or train) the model, simulate the victim session, and run the online
// phase — the exact pipeline of the facade quick start, so the response
// is byte-identical to the library path for the same request.
func (s *Server) handleEavesdrop(w http.ResponseWriter, r *http.Request) {
	var req EavesdropRequest
	if err := decode(r, &req); err != nil {
		s.failRequest(w, mErrorsEavesdrop, err)
		return
	}
	scen, err := ResolveScenario(req)
	if err != nil {
		s.failRequest(w, mErrorsEavesdrop, err)
		return
	}
	if err := s.begin(); err != nil {
		s.failRequest(w, mErrorsEavesdrop, err)
		return
	}
	defer s.end()
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	tc := traceFor(r, req.Seed)
	ctx = obs.WithTraceContext(ctx, tc)

	var resp EavesdropResponse
	err = s.do(ctx, s.reg.ShardFor(ChannelKey(TrainConfig(scen.Cfg), scen.Primary())), func(ctx context.Context) error {
		var err error
		resp, err = s.runEavesdrop(ctx, scen, req, nil, mLatencyEavesdrop)
		return err
	})
	if err != nil {
		s.failRequest(w, mErrorsEavesdrop, err)
		return
	}
	s.m.Add(mEavesdrops, 1)
	w.Header().Set(TraceparentHeader, tc.Local().Traceparent())
	writeJSON(w, http.StatusOK, resp)
}

// runEavesdrop is the one eavesdropping pipeline behind both the one-shot
// endpoint and streaming sessions: fetch (or train) the model, simulate
// the victim session, and run the online phase, forwarding engine events
// to emit when non-nil. Sharing the implementation is what makes a
// session's closing "result" frame byte-identical (modulo JSON
// indentation) to the /v1/eavesdrop body for the same request. Callers
// hold a work-queue slot (s.do) for the model's shard and attach the
// request's trace context to ctx; latMetric names the RED latency
// histogram the run observes into on success ("" skips it).
//
// When Options.Obs is set, the run records onto the trace's own track:
// a router-hop instant if the context arrived over the wire, the
// request span (0 → session end), the queue-admit instant, one instant
// per micro-batched classification, and — through the attack engine's
// tracer — the sampler and verdict events. Every event is emitted from
// this goroutine, so a trace's events are in creation order and the
// exported stream, filtered to one track, is byte-identical at any
// worker count.
func (s *Server) runEavesdrop(ctx context.Context, scen Scenario, req EavesdropRequest, emit func(attack.StreamEvent) error, latMetric string) (EavesdropResponse, error) {
	trainCfg := TrainConfig(scen.Cfg)
	shard := s.reg.ShardFor(ChannelKey(trainCfg, scen.Primary()))
	tc, traced := obs.TraceContextFrom(ctx)
	var tr *obs.Tracer
	var span *obs.Span
	var reqTC obs.TraceContext
	if traced && s.opts.Obs.Enabled() {
		tr = s.opts.Obs.Child(tc.Track())
		if tc.Remote {
			tr.Emit(0, evRouterHop, tc.Fields()...)
			tc = tc.Local()
		}
		reqTC = tc.Child(evRequest, 0)
		span = tr.Start(0, evRequest, reqTC.Fields()...)
		admitTC := reqTC.Child(evQueueAdmit, 0)
		tr.Emit(0, evQueueAdmit, append(admitTC.Fields(), obs.Int("shard", shard))...)
	}
	endAt := sim.Time(0)
	defer func() { span.End(endAt) }()
	var m *attack.Model
	var err error
	if req.PretrainedOnly {
		m, err = s.reg.LookupChannel(trainCfg, scen.Primary())
	} else {
		m, err = s.reg.GetChannel(ctx, trainCfg, scen.Primary())
	}
	if err != nil {
		return EavesdropResponse{}, err
	}
	sess := victim.New(scen.Cfg)
	sess.Run(scen.Script())
	endAt = sess.End
	// A requested defense arms on the session before any probe opens:
	// device hooks install here, probe wraps apply per channel below, and
	// the sampler runs with the default retry policy so defense denials
	// (rate-limit busy errors) degrade the result instead of failing the
	// request — the same contract the fault plane set.
	var inst defense.Instance
	if scen.Defense != nil {
		inst, err = scen.Defense.Arm(sess, scen.DefenseStrength, scen.DefenseSeed)
		if err != nil {
			return EavesdropResponse{}, err
		}
	}
	var res *attack.Result
	var fr *attack.FusionResult
	switch {
	case len(scen.Channels) >= 2:
		// Multi-channel request: the fusion pipeline collects and infers
		// per channel, then merges at decision level.
		fr, err = s.fuseEavesdrop(ctx, scen, req, m, sess, inst, tr)
		if err != nil {
			return EavesdropResponse{}, err
		}
		res = fr.Fused
	case scen.Primary() != "":
		// Single non-default channel: open its probe through the channel
		// plane and run the same streaming engine under the channel's
		// cadence and error taxonomy.
		ch, cerr := channel.Get(scen.Channels[0])
		if cerr != nil {
			return EavesdropResponse{}, cerr
		}
		probe, perr := ch.Open(sess)
		if perr != nil {
			return EavesdropResponse{}, fmt.Errorf("serve: opening channel %q: %w", ch.Name(), perr)
		}
		atk := attack.New(m)
		atk.Obs = tr
		atk.Interval = ch.Interval()
		atk.Errors = ch.Taxonomy()
		if inst != nil {
			probe = inst.WrapProbe(ch.Name(), probe)
			atk.Retry = attack.DefaultRetryPolicy()
		}
		res, err = atk.EavesdropStreamContext(ctx, probe, 0, sess.End, emit)
		if err != nil {
			return EavesdropResponse{}, err
		}
	default:
		f, ferr := sess.Open()
		if ferr != nil {
			return EavesdropResponse{}, fmt.Errorf("serve: opening device file: %w", ferr)
		}
		atk := attack.New(m)
		atk.Obs = tr
		if s.batcher != nil {
			// Route per-delta classification through the model shard's
			// micro-batch queue. Verdicts are unchanged (the batcher's identity
			// contract); only the dispatch is shared. The trace instant is
			// emitted here — the request goroutine — never by the dispatcher,
			// and carries no batch-composition fields, so traces stay
			// byte-identical however requests happen to coalesce.
			atk.Classify = func(m *attack.Model, at sim.Time, v trace.Vec) attack.Verdict {
				verdict := s.batcher.Classify(shard, m, at, v)
				if tr.Enabled() {
					btc := reqTC.Child(evBatchClassify, at)
					tr.Emit(at, evBatchClassify, append(btc.Fields(), obs.Int("shard", shard))...)
				}
				return verdict
			}
		}
		var df attack.DeviceFile = f
		if scen.Fault.Name != "" {
			// The request asked for a fault plane: wrap the device and arm
			// the retry policy, so injected bursts degrade the result
			// instead of failing the request. Fault-free requests keep the
			// zero policy and the raw file — their responses stay
			// byte-identical to the pre-fault-plane wire format.
			df = fault.NewFile(f, scen.Fault, scen.FaultSeed)
			atk.Retry = attack.DefaultRetryPolicy()
		}
		var probe attack.Probe = df
		if inst != nil {
			// The defense filter sits above the ioctl path: a rate-limit
			// denial happens before any (possibly faulted) device read.
			// Wrappers forward TickFault, so a fault plane underneath keeps
			// its clock schedule.
			probe = inst.WrapProbe(channel.DefaultName, df)
			atk.Retry = attack.DefaultRetryPolicy()
		}
		res, err = atk.EavesdropStreamContext(ctx, probe, 0, sess.End, emit)
		if err != nil {
			return EavesdropResponse{}, err
		}
	}
	if latMetric != "" {
		exemplarTrace := ""
		if traced {
			exemplarTrace = tc.TraceID
		}
		s.m.ObserveExemplar(latMetric, float64(sess.End)/float64(sim.Millisecond), exemplarTrace)
	}
	resp := EavesdropResponse{
		Schema:          Schema,
		Model:           res.Model.String(),
		Text:            res.Text,
		Truth:           sess.TypedText(),
		Keys:            len(res.Keys),
		EstimatedLength: res.EstimatedLength,
		Stats:           res.Stats,
		Degraded:        res.Degraded,
		Channel:         scen.Primary(),
	}
	if res.Degraded {
		rec := res.Recovery
		resp.Recovery = &rec
	}
	if fr != nil {
		resp.Fusion = &FusionInfo{
			Channels:      append([]string(nil), scen.Channels...),
			PrimaryText:   fr.Primary.Text,
			SecondaryText: fr.Secondary.Text,
			Recovered:     fr.Recovered,
			Flipped:       fr.Flipped,
		}
	}
	return resp, nil
}

// fuseEavesdrop runs the two-channel pipeline for a resolved
// multi-channel request: collect a trace per channel, run the online
// phase on each, then merge at decision level with attack.Fuse. pm is
// the primary model (already fetched by runEavesdrop); the secondary
// model comes from the registry under its own channel key. A requested
// fault plane wraps the primary probe only — ResolveScenario guarantees
// the primary is the KGSL channel in that case — with the default retry
// policy armed, mirroring the single-channel degraded-mode contract. An
// armed defense instance (inst non-nil) wraps both probes through its
// per-channel applicability set and likewise arms the retry policy, so
// a defense covering only one channel leaves the other's read path — and
// the fused attacker's view of it — untouched.
func (s *Server) fuseEavesdrop(ctx context.Context, scen Scenario, req EavesdropRequest, pm *attack.Model, sess *victim.Session, inst defense.Instance, tr *obs.Tracer) (*attack.FusionResult, error) {
	trainCfg := TrainConfig(scen.Cfg)
	secName := channel.Canonical(scen.Channels[1])
	var sm *attack.Model
	var err error
	if req.PretrainedOnly {
		sm, err = s.reg.LookupChannel(trainCfg, secName)
	} else {
		sm, err = s.reg.GetChannel(ctx, trainCfg, secName)
	}
	if err != nil {
		return nil, err
	}
	pch, err := channel.Get(scen.Channels[0])
	if err != nil {
		return nil, err
	}
	sch, err := channel.Get(scen.Channels[1])
	if err != nil {
		return nil, err
	}

	pprobe, err := pch.Open(sess)
	if err != nil {
		return nil, fmt.Errorf("serve: opening channel %q: %w", pch.Name(), err)
	}
	retry := attack.RetryPolicy{}
	if scen.Fault.Name != "" {
		dev, ok := pprobe.(fault.Device)
		if !ok {
			return nil, fmt.Errorf("%w: channel %q cannot carry a fault profile", ErrBadRequest, pch.Name())
		}
		pprobe = fault.NewFile(dev, scen.Fault, scen.FaultSeed)
		retry = attack.DefaultRetryPolicy()
	}
	if inst != nil {
		pprobe = inst.WrapProbe(pch.Name(), pprobe)
		retry = attack.DefaultRetryPolicy()
	}
	pa := &attack.Attack{Models: []*attack.Model{pm}, Interval: pch.Interval(),
		Errors: pch.Taxonomy(), Retry: retry, Obs: tr}
	ps, err := attack.NewSamplerTaxonomy(pprobe, pch.Interval(), retry, pch.Taxonomy())
	if err != nil {
		return nil, err
	}
	ptr, err := ps.CollectContext(ctx, 0, sess.End)
	if err != nil {
		return nil, err
	}
	pres, err := pa.EavesdropTrace(ptr)
	if err != nil {
		return nil, err
	}

	sprobe, err := sch.Open(sess)
	if err != nil {
		return nil, fmt.Errorf("serve: opening channel %q: %w", sch.Name(), err)
	}
	sretry := attack.RetryPolicy{}
	if inst != nil {
		sprobe = inst.WrapProbe(sch.Name(), sprobe)
		sretry = attack.DefaultRetryPolicy()
	}
	sa := &attack.Attack{Models: []*attack.Model{sm}, Interval: sch.Interval(), Errors: sch.Taxonomy(), Retry: sretry}
	ss, err := attack.NewSamplerTaxonomy(sprobe, sch.Interval(), sretry, sch.Taxonomy())
	if err != nil {
		return nil, err
	}
	str, err := ss.CollectContext(ctx, 0, sess.End)
	if err != nil {
		return nil, err
	}
	sres, err := sa.EavesdropTrace(str)
	if err != nil {
		return nil, err
	}
	return attack.Fuse(pm, ptr.Deltas(), pres, sm, sres, pch.Interval(), attack.FusionOptions{}), nil
}

// handleTrain serves POST /v1/train: warm the registry for a
// configuration. Reports whether the model was already resident.
func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if err := decode(r, &req); err != nil {
		s.failRequest(w, mErrorsTrain, err)
		return
	}
	scen, err := ResolveScenario(EavesdropRequest{
		Device: req.Device, App: req.App, Keyboard: req.Keyboard,
		Channel: req.Channel,
		Text:    "warmup", // unused by training; satisfies scenario validation
	})
	if err != nil {
		s.failRequest(w, mErrorsTrain, err)
		return
	}
	if err := s.begin(); err != nil {
		s.failRequest(w, mErrorsTrain, err)
		return
	}
	defer s.end()
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	var resp TrainResponse
	trainCfg := TrainConfig(scen.Cfg)
	chTag := scen.Primary()
	err = s.do(ctx, s.reg.ShardFor(ChannelKey(trainCfg, chTag)), func(ctx context.Context) error {
		_, cachedErr := s.reg.LookupChannel(trainCfg, chTag)
		m, err := s.reg.GetChannel(ctx, trainCfg, chTag)
		if err != nil {
			return err
		}
		resp = TrainResponse{
			Schema: Schema,
			Model:  ChannelKey(trainCfg, chTag),
			Keys:   len(m.Keys),
			Noise:  len(m.Noise),
			Cached: cachedErr == nil,
		}
		return nil
	})
	if err != nil {
		s.failRequest(w, mErrorsTrain, err)
		return
	}
	s.m.Add(mTrains, 1)
	writeJSON(w, http.StatusOK, resp)
}

// handleExperiment serves POST /v1/experiment: run one paper table or
// figure through the experiment registry.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequest
	if err := decode(r, &req); err != nil {
		s.failRequest(w, mErrorsExperiment, err)
		return
	}
	if req.ID == "" {
		s.failRequest(w, mErrorsExperiment, fmt.Errorf("%w: empty experiment id", ErrBadRequest))
		return
	}
	if err := s.begin(); err != nil {
		s.failRequest(w, mErrorsExperiment, err)
		return
	}
	defer s.end()
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	var resp ExperimentResponse
	err := s.do(ctx, s.reg.ShardFor("exp/"+req.ID), func(ctx context.Context) error {
		res, err := exp.Run(req.ID, exp.Options{
			Quick: req.Quick, Seed: req.Seed,
			Workers: s.opts.TrainWorkers, Ctx: ctx,
		})
		if err != nil {
			return err
		}
		resp = ExperimentResponse{
			Schema: Schema, ID: res.ID,
			Table: res.Table.String(), Metrics: res.Metrics,
		}
		return nil
	})
	if err != nil {
		s.failRequest(w, mErrorsExperiment, err)
		return
	}
	s.m.Add(mExperiments, 1)
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz serves GET /healthz: 200 while serving, 503 once
// draining, with registry and queue statistics either way.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	models, training := s.reg.Stats()
	resident, _ := s.sessions.stats()
	resp := HealthResponse{
		Schema:   Schema,
		Status:   "ok",
		Models:   models,
		Training: training,
		Inflight: s.Inflight(),
		Shards:   s.reg.Shards(),
		Sessions: resident,
		Channels: channel.Names(),
		Defenses: defense.Names(),
	}
	status := http.StatusOK
	if s.Draining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, status, resp)
}

// handleMetrics serves GET /metrics in two negotiated renderings of the
// same state: the default (or ?format=json) sorted-key JSON snapshot
// with the serving gauges folded in (byte-stable for identical states),
// and ?format=prom, the Prometheus text exposition with trace-id
// exemplars on histogram buckets. Both carry an explicit Content-Type;
// any other format answers 400.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.m.Add(mMetricScrapes, 1)
	gauges := s.gauges()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		snap := s.m.Snapshot()
		for k, v := range gauges {
			snap[k] = v
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteSnapshotJSON(w, snap) //nolint:errcheck // client gone mid-scrape
	case "prom":
		w.Header().Set("Content-Type", obs.PromContentType)
		s.m.WriteProm(w, gauges) //nolint:errcheck // client gone mid-scrape
	default:
		s.writeError(w, fmt.Errorf("%w: unknown metrics format %q", ErrBadRequest, format))
	}
}

// gauges reads the point-in-time serving state /metrics folds in next to
// the monotonic registry: registry residency, in-flight and session
// counts, and each shard's queued-request depth.
func (s *Server) gauges() map[string]float64 {
	models, training := s.reg.Stats()
	resident, streaming := s.sessions.stats()
	g := map[string]float64{
		"registry.models_resident": float64(models),
		"registry.training":        float64(training),
		"registry.evictions":       float64(Evictions()),
		"serve.inflight":           float64(s.Inflight()),
		"serve.sessions.resident":  float64(resident),
		"serve.sessions.streaming": float64(streaming),
	}
	for i, ws := range s.work {
		g[s.shardGauge[i]] = float64(len(ws.admit))
	}
	return g
}
