package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"gpuleak/internal/attack"
	"gpuleak/internal/fault"
	"gpuleak/internal/kgsl"
)

// TestStatusForSampleErrors pins the degraded-mode HTTP taxonomy: a
// retryable device failure the retry policy could not absorb is 503
// (transient, Retry-After applies), while a mitigation refusing the
// counter interface stays 403 even when wrapped in a SampleError.
func TestStatusForSampleErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"retryable sample error (EBUSY)",
			&attack.SampleError{Op: "read", Attempts: 4, Err: kgsl.ErrBusy},
			http.StatusServiceUnavailable},
		{"retryable sample error (revoked)",
			&attack.SampleError{Op: "reserve", Attempts: 4, Err: kgsl.ErrNotReserved},
			http.StatusServiceUnavailable},
		{"wrapped retryable sample error",
			fmt.Errorf("attack: 33 consecutive failed ticks: %w",
				&attack.SampleError{Op: "read", Attempts: 4, Err: kgsl.ErrBusy}),
			http.StatusServiceUnavailable},
		{"fatal sample error (EPERM mitigation)",
			&attack.SampleError{Op: "read", Attempts: 1, Err: kgsl.ErrPerm},
			http.StatusForbidden},
		{"plain backpressure", ErrBusy, http.StatusTooManyRequests},
		{"draining", ErrDraining, http.StatusServiceUnavailable},
		{"bad request", ErrBadRequest, http.StatusBadRequest},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"unclassified", errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("%s: statusFor = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestWriteErrorRetryAfter pins that transient statuses (429, 503) carry
// the Retry-After hint and permanent ones do not.
func TestWriteErrorRetryAfter(t *testing.T) {
	s := NewServer(Options{Shards: 1})
	cases := []struct {
		err  error
		want bool
	}{
		{ErrBusy, true},
		{&attack.SampleError{Op: "read", Attempts: 4, Err: kgsl.ErrBusy}, true},
		{ErrBadRequest, false},
		{&attack.SampleError{Op: "read", Attempts: 1, Err: kgsl.ErrPerm}, false},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.writeError(rec, tc.err)
		if got := rec.Header().Get("Retry-After") != ""; got != tc.want {
			t.Errorf("writeError(%v): Retry-After present=%v, want %v (status %d)",
				tc.err, got, tc.want, rec.Code)
		}
	}
}

// TestResolveScenarioFaultProfile pins the request-side fault plumbing:
// named profiles resolve, the fault seed defaults to a derivation of the
// request seed, and unknown names are 400s, not 500s.
func TestResolveScenarioFaultProfile(t *testing.T) {
	scen, err := ResolveScenario(EavesdropRequest{Text: "x", Seed: 7, FaultProfile: "moderate"})
	if err != nil {
		t.Fatal(err)
	}
	if scen.Fault.Name != "moderate" {
		t.Fatalf("scenario fault profile %q, want moderate", scen.Fault.Name)
	}
	if scen.FaultSeed != fault.Seed(7, 0) {
		t.Fatalf("scenario fault seed %d, want fault.Seed(7, 0) = %d", scen.FaultSeed, fault.Seed(7, 0))
	}

	scen, err = ResolveScenario(EavesdropRequest{Text: "x", Seed: 7, FaultProfile: "moderate", FaultSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if scen.FaultSeed != 99 {
		t.Fatalf("explicit fault seed not honored: %d", scen.FaultSeed)
	}

	_, err = ResolveScenario(EavesdropRequest{Text: "x", FaultProfile: "catastrophic"})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown profile error %v, want ErrBadRequest", err)
	}
	if statusFor(err) != http.StatusBadRequest {
		t.Fatalf("unknown profile maps to %d, want 400", statusFor(err))
	}

	scen, err = ResolveScenario(EavesdropRequest{Text: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if scen.Fault.Name != "" {
		t.Fatalf("fault plane armed without a fault_profile: %+v", scen.Fault)
	}
}
