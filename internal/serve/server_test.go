package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuleak/internal/attack"
	"gpuleak/internal/obs"
	"gpuleak/internal/victim"
)

// blockedServer builds a server whose trainings park on the returned
// release channel, so tests can hold requests in flight deterministically.
func blockedServer(t *testing.T, opts Options) (*Server, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	s := NewServer(opts)
	s.reg = NewRegistry(s.opts.Shards, s.opts.CachePerShard,
		func(ctx context.Context, cfg victim.Config, _ string) (*attack.Model, error) {
			select {
			case <-release:
				return &attack.Model{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}, s.m)
	return s, release
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// waitCounter polls a metrics counter until it reaches want; these
// transitions complete in microseconds, the deadline is pure paranoia.
func waitCounter(t *testing.T, s *Server, key string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.m.Snapshot()[key] >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %v (snapshot %v)", key, want, s.m.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerBackpressure pins the overload contract: with 1 worker and 1
// queue slot on the only shard, a third concurrent request is refused
// with 429 + Retry-After immediately — it neither queues unboundedly nor
// hangs.
func TestServerBackpressure(t *testing.T) {
	s, release := blockedServer(t, Options{
		Shards: 1, WorkersPerShard: 1, QueuePerShard: 1,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer close(release)

	// Two requests for the same configuration: one executing (parked in
	// the blocked training), one admitted and waiting for the run slot.
	results := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/train", `{}`)
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	waitCounter(t, s, "serve.admitted", 2)

	// The shard's admit capacity (workers+queue = 2) is now exhausted.
	resp := postJSON(t, ts.URL+"/v1/train", `{}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 reply missing Retry-After")
	}
	er := decodeBody[ErrorResponse](t, resp)
	if !strings.Contains(er.Error, "queue full") {
		t.Fatalf("429 body %q does not name the full queue", er.Error)
	}
	if s.m.Snapshot()["serve.rejected"] != 1 {
		t.Fatalf("serve.rejected = %v, want 1", s.m.Snapshot()["serve.rejected"])
	}

	// Releasing the training drains both held requests successfully: the
	// queue rejected the excess, not the admitted work.
	release <- struct{}{}
	wg.Wait()
	close(results)
	for code := range results {
		if code != http.StatusOK {
			t.Fatalf("held request finished with %d, want 200", code)
		}
	}
}

// TestServerQueueWaitHonorsContext pins that an admitted request waiting
// for a run slot gives up when its context dies instead of hanging.
func TestServerQueueWaitHonorsContext(t *testing.T) {
	s := NewServer(Options{Shards: 1, WorkersPerShard: 1, QueuePerShard: 4})

	hold := make(chan struct{})
	running := make(chan struct{})
	go s.do(context.Background(), 0, func(context.Context) error { //nolint:errcheck
		close(running)
		<-hold
		return nil
	})
	<-running
	defer close(hold)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.do(ctx, 0, func(context.Context) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("queued request with dead context: %v, want context.Canceled", err)
	}
	if s.m.Snapshot()["serve.queue_timeouts"] != 1 {
		t.Fatalf("serve.queue_timeouts = %v, want 1", s.m.Snapshot()["serve.queue_timeouts"])
	}
}

// TestServerGracefulShutdown pins the drain contract: Shutdown stops
// admission (new requests get 503, healthz flips to draining) and blocks
// until the in-flight run completes — which then still answers 200.
func TestServerGracefulShutdown(t *testing.T) {
	s, release := blockedServer(t, Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/train", `{}`)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	waitCounter(t, s, "serve.admitted", 1)

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	deadline := time.Now().Add(10 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/train", `{}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 reply missing Retry-After")
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", hresp.StatusCode)
	}
	if h := decodeBody[HealthResponse](t, hresp); h.Status != "draining" {
		t.Fatalf("healthz status %q, want %q", h.Status, "draining")
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before the in-flight run drained: %v", err)
	default:
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
}

// TestServerShutdownDeadline pins that Shutdown gives up when its context
// expires with work still in flight.
func TestServerShutdownDeadline(t *testing.T) {
	s, release := blockedServer(t, Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer close(release)

	go func() {
		resp := postJSON(t, ts.URL+"/v1/train", `{}`)
		resp.Body.Close()
	}()
	waitCounter(t, s, "serve.admitted", 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown with dead context: %v, want context.Canceled", err)
	}
}

// TestServerErrorTaxonomy pins the HTTP status mapping of the stable
// error sentinels.
func TestServerErrorTaxonomy(t *testing.T) {
	s := NewServer(Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"empty text", "/v1/eavesdrop", `{}`, http.StatusBadRequest},
		{"unknown device", "/v1/eavesdrop", `{"text":"x","device":"Nokia 3310"}`, http.StatusBadRequest},
		{"unknown keyboard", "/v1/eavesdrop", `{"text":"x","keyboard":"morse"}`, http.StatusBadRequest},
		{"bad volunteer", "/v1/eavesdrop", `{"text":"x","volunteer":9}`, http.StatusBadRequest},
		{"malformed body", "/v1/eavesdrop", `{"text":`, http.StatusBadRequest},
		{"unknown experiment", "/v1/experiment", `{"id":"fig99"}`, http.StatusNotFound},
		{"empty experiment", "/v1/experiment", `{}`, http.StatusBadRequest},
		{"pretrained only, cold registry", "/v1/eavesdrop",
			`{"text":"x","pretrained_only":true}`, http.StatusPreconditionFailed},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+tc.path, tc.body)
		er := decodeBody[ErrorResponse](t, resp)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, er.Error, tc.want)
		}
		if er.Schema != Schema || er.Status != resp.StatusCode {
			t.Errorf("%s: error body %+v inconsistent with reply", tc.name, er)
		}
	}
}

// TestServerHealthzAndMetrics pins the observability endpoints: healthz
// reports registry statistics, /metrics is valid JSON carrying the
// serving gauges.
func TestServerHealthzAndMetrics(t *testing.T) {
	s, release := blockedServer(t, Options{Shards: 2})
	close(release) // trainings complete immediately
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/train", `{}`)
	if tr := decodeBody[TrainResponse](t, resp); tr.Cached {
		t.Fatal("first training reported cached=true")
	}
	resp = postJSON(t, ts.URL+"/v1/train", `{}`)
	if tr := decodeBody[TrainResponse](t, resp); !tr.Cached {
		t.Fatal("second training of the same configuration not cached")
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[HealthResponse](t, hresp)
	if hresp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %q, want 200 ok", hresp.StatusCode, h.Status)
	}
	if h.Models != 1 || h.Training != 0 || h.Shards != 2 {
		t.Fatalf("healthz stats %+v, want 1 model, 0 training, 2 shards", h)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap := decodeBody[map[string]float64](t, mresp)
	for _, key := range []string{
		"registry.models_resident", "registry.training",
		"registry.evictions", "serve.inflight", "serve.trains",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("/metrics missing %s", key)
		}
	}
	if snap["registry.models_resident"] != 1 {
		t.Errorf("registry.models_resident = %v, want 1", snap["registry.models_resident"])
	}
}

// TestMetricsContentNegotiation pins both renderings of /metrics over
// one registry state: the default JSON snapshot (explicit Content-Type,
// cumulative histogram bucket keys in the flat map) and the Prometheus
// text exposition behind ?format=prom (counter/gauge/histogram families
// with the trace-id exemplar on the bucket holding the observation).
// Any other format is a 400.
func TestMetricsContentNegotiation(t *testing.T) {
	s, release := blockedServer(t, Options{Shards: 1})
	close(release)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/train", `{}`)
	decodeBody[TrainResponse](t, resp)
	const trace = "0123456789abcdef0123456789abcdef"
	s.m.ObserveExemplar(mLatencyEavesdrop, 12, trace) // lands in the le=25 bucket

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	snap := decodeBody[map[string]float64](t, mresp)
	if snap["serve.trains"] != 1 {
		t.Errorf("serve.trains = %v, want 1", snap["serve.trains"])
	}
	if snap["serve.latency_ms.eavesdrop_bucket_le_10"] != 0 ||
		snap["serve.latency_ms.eavesdrop_bucket_le_25"] != 1 {
		t.Errorf("bucket keys wrong: le_10=%v le_25=%v, want 0 and 1 (cumulative)",
			snap["serve.latency_ms.eavesdrop_bucket_le_10"],
			snap["serve.latency_ms.eavesdrop_bucket_le_25"])
	}

	presp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	if ct := presp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("prom Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	raw, err := io.ReadAll(presp.Body)
	presp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE gpuleak_serve_trains counter\ngpuleak_serve_trains 1\n",
		"# TYPE gpuleak_serve_inflight gauge\n",
		"# TYPE gpuleak_serve_latency_ms_eavesdrop histogram\n",
		"gpuleak_serve_latency_ms_eavesdrop_bucket{le=\"25\"} 1 # {trace_id=\"" + trace + "\"} 12\n",
		"gpuleak_serve_latency_ms_eavesdrop_bucket{le=\"+Inf\"} 1\n",
		"gpuleak_serve_latency_ms_eavesdrop_count 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom rendering missing %q", want)
		}
	}

	bresp, err := http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	if er := decodeBody[ErrorResponse](t, bresp); bresp.StatusCode != http.StatusBadRequest || er.Status != http.StatusBadRequest {
		t.Errorf("unknown format: status %d body %+v, want 400", bresp.StatusCode, er)
	}
}
