package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"gpuleak/internal/attack"
	"gpuleak/internal/obs"
)

// sseStream writes one session's Server-Sent-Events response. Frames are
// `id:`-numbered so a router that lost its backend mid-stream can replay
// the session on another replica and skip the frames the client already
// received — deterministic replicas produce byte-identical frames, which
// makes that splice invisible.
type sseStream struct {
	w         http.ResponseWriter
	flush     http.Flusher
	sessionID string
	trace     obs.TraceContext
	started   bool
	seq       uint64
}

// start writes the SSE response header and the "open" frame. Called
// lazily by the first emission, so setup errors can still be answered as
// plain JSON.
func (st *sseStream) start() error {
	if st.started {
		return nil
	}
	st.started = true
	h := st.w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	st.w.WriteHeader(http.StatusOK)
	if st.trace.Valid() {
		// The trace id also travels in-band: comment frames carry no id,
		// so a router splicing replicas never replays them — every hop
		// (router, then each replica it attaches) speaks its own
		// traceparent line ahead of the first real frame, and a client
		// can correlate the stream with exported spans even across a
		// failover.
		if _, err := fmt.Fprintf(st.w, ": traceparent %s\n\n", st.trace.Traceparent()); err != nil {
			return fmt.Errorf("serve: writing traceparent comment: %w", err)
		}
	}
	return st.frame("open", SessionResponse{Schema: Schema, ID: st.sessionID})
}

// frame writes one SSE frame (id/event/data, blank-line terminated) with
// a compact-JSON data payload and flushes it to the client.
func (st *sseStream) frame(event string, data any) error {
	st.seq++
	payload, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("serve: encoding %s frame: %w", event, err)
	}
	if _, err := fmt.Fprintf(st.w, "id: %d\nevent: %s\ndata: %s\n\n", st.seq, event, payload); err != nil {
		return fmt.Errorf("serve: writing %s frame: %w", event, err)
	}
	if st.flush != nil {
		st.flush.Flush()
	}
	return nil
}

// event forwards one engine commit/withdrawal as a "key"/"retract" frame.
func (st *sseStream) event(ev attack.StreamEvent) error {
	if err := st.start(); err != nil {
		return err
	}
	data := StreamEventData{
		Schema: StreamSchema,
		Seq:    st.seq + 1,
		AtUS:   int64(ev.At),
		Kind:   ev.Kind,
		Keys:   ev.Keys,
	}
	if ev.Kind == "key" {
		data.Key = string(ev.Key.R)
		if ev.Key.Alt != 0 {
			data.Alt = string(ev.Key.Alt)
		}
		data.Margin = ev.Key.Margin
	}
	return st.frame(ev.Kind, data)
}

// result closes the stream with the one-shot response. The data payload
// is the compact form of exactly the JSON /v1/eavesdrop would have
// written for the same request, pinned by the root streaming tests.
func (st *sseStream) result(resp EavesdropResponse) error {
	if err := st.start(); err != nil {
		return err
	}
	return st.frame("result", resp)
}

// fail reports an error on an already-started stream as an in-band
// "error" frame (the HTTP status line has long been sent).
func (st *sseStream) fail(err error, status int) {
	st.frame("error", ErrorResponse{Schema: Schema, Error: err.Error(), Status: status}) //nolint:errcheck // client gone: nothing left to report to
}
