package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"gpuleak/internal/attack"
	"gpuleak/internal/obs"
	"gpuleak/internal/victim"
)

// TrainFunc runs the offline phase for one controlled configuration on
// one side channel (canonical name; "" = KGSL). It must be deterministic
// in (configuration, channel) alone: the registry deduplicates
// concurrent trainings, so whichever request triggers it defines the
// model every later hit receives.
type TrainFunc func(ctx context.Context, cfg victim.Config, channel string) (*attack.Model, error)

// Registry is the sharded model store: classifiers keyed by victim
// configuration, trained on miss exactly once per key (singleflight),
// evicted least-recently-used when a shard exceeds its capacity.
//
// Sharding serves two masters: lock contention (a training holds no shard
// lock, but hit bookkeeping does) and the serving layer's work queues,
// which are per-shard so a hot configuration saturates its own queue
// without starving the rest of the key space.
type Registry struct {
	shards []*regShard
	cap    int
	train  TrainFunc
	m      *obs.Metrics
}

// regShard is one lock domain of the registry. seq is a logical clock for
// LRU ordering: it advances on every touch, so eviction order is a pure
// function of the access sequence, never of the wall clock.
type regShard struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	seq     uint64
}

// regEntry is one (possibly in-flight) model. ready is closed once m/err
// are final; waiters read them only after the close, which is what makes
// the singleflight race-free without holding the shard lock through a
// training.
type regEntry struct {
	ready    chan struct{}
	m        *attack.Model
	err      error
	lastUse  uint64
	training bool
}

// NewRegistry builds a registry with nShards lock domains holding at most
// capPerShard trained models each (minimums of 1 are enforced). train may
// be nil, selecting the default offline phase (attack.CollectContext on
// the configuration, 2 repeats).
func NewRegistry(nShards, capPerShard int, train TrainFunc, m *obs.Metrics) *Registry {
	if nShards < 1 {
		nShards = 1
	}
	if capPerShard < 1 {
		capPerShard = 1
	}
	if train == nil {
		train = func(ctx context.Context, cfg victim.Config, channel string) (*attack.Model, error) {
			return attack.CollectContext(ctx, cfg, attack.CollectOptions{Repeats: 2, Channel: channel})
		}
	}
	r := &Registry{cap: capPerShard, train: train, m: m}
	for i := 0; i < nShards; i++ {
		r.shards = append(r.shards, &regShard{entries: map[string]*regEntry{}})
	}
	return r
}

// Key derives the registry key of a victim configuration: the classifier
// identity (device, resolution, keyboard, refresh rate) plus the target
// app, whose login screen shapes the learned noise signatures.
func Key(cfg victim.Config) string { return ChannelKey(cfg, "") }

// ChannelKey is Key for a model trained on a named side channel. The
// default KGSL channel ("" or "kgsl") yields exactly Key(cfg), so
// pre-channel-plane registry contents and shard routing are unchanged.
func ChannelKey(cfg victim.Config, channel string) string {
	app := "Chase"
	if cfg.App != nil {
		app = cfg.App.Name
	}
	return attack.ModelKeyForChannel(cfg, channel).String() + "/app=" + app
}

// ShardFor maps a registry key onto a shard index; the serving layer uses
// the same mapping for its work queues so one configuration's load lands
// on one queue.
func (r *Registry) ShardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// Shards returns the number of shards.
func (r *Registry) Shards() int { return len(r.shards) }

// Get returns the model for a configuration, training it on miss. The
// first caller of a key trains with the shard lock released; concurrent
// callers of the same key wait for that training (or their own context),
// and callers of other keys proceed independently. A failed training is
// not cached — the entry is removed so a later request retries.
func (r *Registry) Get(ctx context.Context, cfg victim.Config) (*attack.Model, error) {
	return r.GetChannel(ctx, cfg, "")
}

// GetChannel is Get for a model trained on a named side channel
// (canonical name; "" = KGSL).
func (r *Registry) GetChannel(ctx context.Context, cfg victim.Config, channel string) (*attack.Model, error) {
	key := ChannelKey(cfg, channel)
	sh := r.shards[r.ShardFor(key)]

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.seq++
		e.lastUse = sh.seq
		sh.mu.Unlock()
		r.m.Add(mRegistryHits, 1)
		select {
		case <-e.ready:
			return e.m, e.err
		case <-ctx.Done():
			return nil, fmt.Errorf("serve: waiting for model %s: %w", key, ctx.Err())
		}
	}
	e := &regEntry{ready: make(chan struct{}), training: true}
	sh.seq++
	e.lastUse = sh.seq
	sh.entries[key] = e
	sh.evict(r.cap)
	sh.mu.Unlock()
	r.m.Add(mRegistryMisses, 1)

	m, err := r.train(ctx, cfg, channel)
	e.m, e.err = m, err
	sh.mu.Lock()
	e.training = false
	if err != nil {
		// Do not cache failures: if this exact entry is still resident,
		// drop it so the next request retrains.
		if sh.entries[key] == e {
			delete(sh.entries, key)
		}
	}
	sh.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, fmt.Errorf("serve: training %s: %w", key, err)
	}
	r.m.Add(mRegistryTrained, 1)
	return m, nil
}

// Lookup returns the model for a configuration only if it is already
// resident and trained; otherwise it fails with ErrModelNotTrained
// (without waiting on an in-flight training and without training).
func (r *Registry) Lookup(cfg victim.Config) (*attack.Model, error) {
	return r.LookupChannel(cfg, "")
}

// LookupChannel is Lookup for a model trained on a named side channel.
func (r *Registry) LookupChannel(cfg victim.Config, channel string) (*attack.Model, error) {
	key := ChannelKey(cfg, channel)
	sh := r.shards[r.ShardFor(key)]
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok && !e.training {
		sh.seq++
		e.lastUse = sh.seq
		sh.mu.Unlock()
		r.m.Add(mRegistryHits, 1)
		// A resident non-training entry is final: ready is already closed.
		return e.m, e.err
	}
	sh.mu.Unlock()
	r.m.Add(mRegistryMisses, 1)
	return nil, fmt.Errorf("serve: no model for %s: %w", key, attack.ErrModelNotTrained)
}

// evict removes least-recently-used trained entries until the shard is
// within capacity. In-flight trainings are never evicted (their waiters
// hold the entry anyway); a shard may therefore transiently exceed cap by
// its number of concurrent trainings, which the serving layer's bounded
// queues keep finite.
func (sh *regShard) evict(cap int) {
	//gpuvet:ignore lockcheck -- held by caller (Get locks sh.mu)
	for len(sh.entries) > cap {
		victimKey, oldest := "", ^uint64(0)
		for k, e := range sh.entries {
			if e.training {
				continue
			}
			if e.lastUse < oldest {
				oldest = e.lastUse
				victimKey = k
			}
		}
		if victimKey == "" {
			return
		}
		delete(sh.entries, victimKey)
		evictions.Add(1)
	}
}

// evictions counts LRU evictions across all registries; the serving layer
// snapshots it into /metrics.
var evictions atomic.Int64

// Stats reports the registry's resident and in-flight entry counts.
func (r *Registry) Stats() (models, training int) {
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.training {
				training++
			} else {
				models++
			}
		}
		sh.mu.Unlock()
	}
	return models, training
}

// Evictions returns the process-wide LRU eviction count.
func Evictions() int64 { return evictions.Load() }
