package serve

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func createSession(t *testing.T, url, body string) SessionResponse {
	t.Helper()
	resp := postJSON(t, url+"/v1/sessions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: status %d, want 201", resp.StatusCode)
	}
	sr := decodeBody[SessionResponse](t, resp)
	if sr.ID == "" || sr.Stream == "" {
		t.Fatalf("session create body %+v missing id/stream", sr)
	}
	return sr
}

func doReq(t *testing.T, method, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	return resp
}

// TestSessionLifecycle pins creation, cancellation, and the not-found
// taxonomy: DELETE removes an unattached session, a second DELETE and a
// stream attach for it are 404s, and unknown ids are 404s.
func TestSessionLifecycle(t *testing.T) {
	s := NewServer(Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sr := createSession(t, ts.URL, `{"text":"pw"}`)
	if !strings.HasPrefix(sr.Stream, "/v1/sessions/") {
		t.Fatalf("stream path %q", sr.Stream)
	}
	resp := doReq(t, http.MethodDelete, ts.URL+"/v1/sessions/"+sr.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	for _, u := range []string{
		ts.URL + "/v1/sessions/" + sr.ID,
		ts.URL + "/v1/sessions/nope",
	} {
		resp := doReq(t, http.MethodDelete, u)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("delete %s: status %d, want 404", u, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp = doReq(t, http.MethodGet, ts.URL+sr.Stream)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stream after delete: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// A bad request fails at creation, not at attach.
	bad := postJSON(t, ts.URL+"/v1/sessions", `{"text":""}`)
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-text session: status %d, want 400", bad.StatusCode)
	}
	bad.Body.Close()
}

// TestSessionStreamSetupErrorIsPlainJSON pins that a failure before any
// stream byte (here: pretrained_only with a cold registry) answers a
// normal JSON error with the one-shot status taxonomy (412), and that the
// failed attach consumes the session.
func TestSessionStreamSetupErrorIsPlainJSON(t *testing.T) {
	s := NewServer(Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sr := createSession(t, ts.URL, `{"text":"pw","pretrained_only":true}`)
	resp := doReq(t, http.MethodGet, ts.URL+sr.Stream)
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("cold pretrained stream: status %d, want 412", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("setup error Content-Type %q, want application/json", ct)
	}
	er := decodeBody[ErrorResponse](t, resp)
	if er.Status != http.StatusPreconditionFailed {
		t.Fatalf("error body %+v", er)
	}
	resp = doReq(t, http.MethodGet, ts.URL+sr.Stream)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("re-attach after failed stream: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestSessionSingleUse pins the consumed contract: while one attach is
// streaming (parked in a blocked training), a second attach answers 409.
func TestSessionSingleUse(t *testing.T) {
	s, release := blockedServer(t, Options{Shards: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sr := createSession(t, ts.URL, `{"text":"ab"}`)
	done := make(chan int, 1)
	go func() {
		resp := doReq(t, http.MethodGet, ts.URL+sr.Stream)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	waitCounter(t, s, "serve.admitted", 1)

	resp := doReq(t, http.MethodGet, ts.URL+sr.Stream)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second attach: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("first attach: status %d, want 200", code)
	}
	// The stream ran to completion; the session is gone.
	resp = doReq(t, http.MethodGet, ts.URL+sr.Stream)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("attach after completion: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestSessionTableBounds pins bounded session state: at MaxSessions the
// oldest unattached session is evicted; when every resident session is
// streaming, creation answers 429.
func TestSessionTableBounds(t *testing.T) {
	s, release := blockedServer(t, Options{Shards: 1, MaxSessions: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s1 := createSession(t, ts.URL, `{"text":"one"}`)
	s2 := createSession(t, ts.URL, `{"text":"two"}`)
	s3 := createSession(t, ts.URL, `{"text":"three"}`)
	if s3.ID == s1.ID || s3.ID == s2.ID {
		t.Fatalf("session ids not unique: %q %q %q", s1.ID, s2.ID, s3.ID)
	}
	// s1 was the oldest unattached: evicted.
	resp := doReq(t, http.MethodGet, ts.URL+s1.Stream)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session stream: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	if got := s.m.Snapshot()["serve.sessions.evicted"]; got != 1 {
		t.Fatalf("serve.sessions.evicted = %v, want 1", got)
	}

	// Park both survivors in blocked streams: the table is full of
	// streaming sessions, so creation must refuse rather than evict.
	done := make(chan int, 2)
	for _, sr := range []SessionResponse{s2, s3} {
		go func(stream string) {
			resp := doReq(t, http.MethodGet, ts.URL+stream)
			resp.Body.Close()
			done <- resp.StatusCode
		}(sr.Stream)
	}
	waitCounter(t, s, "serve.admitted", 2)
	resp = postJSON(t, ts.URL+"/v1/sessions", `{"text":"four"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create with all sessions streaming: status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("parked stream finished with %d, want 200", code)
		}
	}
}

// TestSessionIdleReap pins the injected idle-timer hook: the daemon's
// reap callback drops an unattached session (404 afterwards), and a
// session that attaches first stops its timer.
func TestSessionIdleReap(t *testing.T) {
	var reaps []func()
	stopped := 0
	s := NewServer(Options{
		Shards: 1,
		SessionTimer: func(reap func()) func() {
			reaps = append(reaps, reap)
			return func() { stopped++ }
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sr := createSession(t, ts.URL, `{"text":"idle"}`)
	if len(reaps) != 1 {
		t.Fatalf("SessionTimer armed %d times, want 1", len(reaps))
	}
	reaps[0]() // the daemon's timer fires
	resp := doReq(t, http.MethodGet, ts.URL+sr.Stream)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reaped session stream: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	if got := s.m.Snapshot()["serve.sessions.idle_reaped"]; got != 1 {
		t.Fatalf("serve.sessions.idle_reaped = %v, want 1", got)
	}
	reaps[0]() // late second fire must be harmless

	// An attach stops the pending timer (claim) even when the stream
	// errors afterwards.
	sr2 := createSession(t, ts.URL, `{"text":"used","pretrained_only":true}`)
	before := stopped
	resp = doReq(t, http.MethodGet, ts.URL+sr2.Stream)
	resp.Body.Close()
	if stopped != before+1 {
		t.Fatalf("attach stopped %d timers, want 1", stopped-before)
	}
	if len(reaps) != 2 {
		t.Fatalf("SessionTimer armed %d times, want 2", len(reaps))
	}
	reaps[1]() // timer fires after consumption: no-op
}

// TestSessionDrainingRefusesCreateAndAttach pins drain-aware teardown:
// once Shutdown begins, POST /v1/sessions answers 503 and sessions
// created earlier are dropped (stream attach 404s, timers stopped).
func TestSessionDrainingRefusesCreateAndAttach(t *testing.T) {
	stopped := 0
	s := NewServer(Options{
		Shards:       1,
		SessionTimer: func(func()) func() { return func() { stopped++ } },
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sr := createSession(t, ts.URL, `{"text":"doomed"}`)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/sessions", `{"text":"late"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	resp = doReq(t, http.MethodGet, ts.URL+sr.Stream)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("attach after drain: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	if stopped != 1 {
		t.Fatalf("drain stopped %d idle timers, want 1", stopped)
	}
}

// TestSessionStreamFrames runs one real (blocked-training-free) stream
// against the fake-model server and pins the SSE framing: an "open"
// frame first, a closing "result" frame, monotonically numbered ids, and
// the text/event-stream content type.
func TestSessionStreamFrames(t *testing.T) {
	s, release := blockedServer(t, Options{Shards: 1})
	close(release) // trainings return the fake model immediately
	ts := httptest.NewServer(s)
	defer ts.Close()

	sr := createSession(t, ts.URL, `{"text":"ab","seed":5}`)
	resp := doReq(t, http.MethodGet, ts.URL+sr.Stream)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q, want text/event-stream", ct)
	}
	var events []string
	lastID := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			events = append(events, strings.TrimPrefix(line, "event: "))
		case strings.HasPrefix(line, "id: "):
			id := 0
			if _, err := fmt.Sscanf(line, "id: %d", &id); err != nil || id != lastID+1 {
				t.Fatalf("frame id %q after %d", line, lastID)
			}
			lastID = id
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0] != "open" || events[len(events)-1] != "result" {
		t.Fatalf("event sequence %v, want open ... result", events)
	}
}
