package gpuleak

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"gpuleak/internal/serve"
)

// TestErrorTaxonomy pins the facade's stable sentinels: errors from any
// layer match them under errors.Is, including the legacy concrete
// UnknownExperimentError type.
func TestErrorTaxonomy(t *testing.T) {
	// Unknown experiment: both entry points, both matchers.
	if _, err := RunExperiment("fig99", true, 1); err == nil {
		t.Fatal("RunExperiment(fig99) succeeded")
	} else {
		var ue *UnknownExperimentError
		if !errors.As(err, &ue) || ue.ID != "fig99" {
			t.Fatalf("RunExperiment error %v is not UnknownExperimentError", err)
		}
		if !errors.Is(err, ErrUnknownExperiment) {
			t.Fatalf("RunExperiment error %v does not match ErrUnknownExperiment", err)
		}
	}

	// Model not trained: eavesdropping with no preloaded models.
	sess := NewVictim(VictimConfig{Device: OnePlus8Pro, Seed: 1})
	sess.Run(TypeText("x", 1))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAttack().Eavesdrop(f, 0, sess.End); !errors.Is(err, ErrModelNotTrained) {
		t.Fatalf("modelless Eavesdrop error %v does not match ErrModelNotTrained", err)
	}

	// Busy: the serving layer's rejection matches through the facade alias.
	if !errors.Is(serve.ErrBusy, ErrBusy) {
		t.Fatal("serve.ErrBusy does not match gpuleak.ErrBusy")
	}
}

// TestTrainContextMatchesTrainWith pins that the functional-option entry
// point is a pure veneer: same knobs, bit-identical model.
func TestTrainContextMatchesTrainWith(t *testing.T) {
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 42}
	viaStruct, err := TrainWith(cfg, CollectOptions{Repeats: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	viaOptions, err := TrainContext(context.Background(), cfg,
		WithRepeats(1), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := viaStruct.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := viaOptions.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("TrainContext model differs from TrainWith model (%d vs %d bytes)",
			b.Len(), a.Len())
	}
}

// TestTrainContextCanceled pins prompt cancellation: a dead context stops
// the offline phase with the context's error.
func TestTrainContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 1}
	if _, err := TrainContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainContext with dead context: %v, want context.Canceled", err)
	}
}

// TestEavesdropContextCanceled pins sampler-tick cancellation on the
// online phase.
func TestEavesdropContextCanceled(t *testing.T) {
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 5}
	model, err := TrainWith(cfg, CollectOptions{Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewVictim(cfg)
	sess.Run(TypeText("secret", 5))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewAttack(model).EavesdropContext(ctx, f, 0, sess.End); !errors.Is(err, context.Canceled) {
		t.Fatalf("EavesdropContext with dead context: %v, want context.Canceled", err)
	}
}

// TestRunExperimentContextCanceled pins trial-granular cancellation on
// the experiment runner.
func TestRunExperimentContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperimentContext(ctx, "fig17", true, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunExperimentContext with dead context: %v, want context.Canceled", err)
	}
}

// TestOpenSamplerOptions pins the configurable sampler entry point:
// WithInterval overrides the polling period, the default matches
// NewSamplerOn, and WithObs attaches the tracer.
func TestOpenSamplerOptions(t *testing.T) {
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 1}
	sess := NewVictim(cfg)
	sess.Run(TypeText("x", 1))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer()
	s, err := OpenSampler(f, WithInterval(4*1000), WithObs(tr))
	if err != nil {
		t.Fatal(err)
	}
	if s.Interval != 4*1000 {
		t.Fatalf("sampler interval %v, want 4000", s.Interval)
	}
	if s.Obs != tr {
		t.Fatal("WithObs tracer not attached to sampler")
	}

	f2, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	sDefault, err := OpenSampler(f2)
	if err != nil {
		t.Fatal(err)
	}
	sLegacy, err := NewSamplerOn(f2)
	if err != nil {
		t.Fatal(err)
	}
	if sDefault.Interval != sLegacy.Interval {
		t.Fatalf("OpenSampler default interval %v differs from NewSamplerOn %v",
			sDefault.Interval, sLegacy.Interval)
	}
}

// TestRunExperimentContextMatchesLegacy pins that the context-aware
// experiment runner returns the same table as the legacy signature.
func TestRunExperimentContextMatchesLegacy(t *testing.T) {
	legacy, err := RunExperiment("fig17", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunExperimentContext(context.Background(), "fig17", true, 1, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Table.String() != viaCtx.Table.String() {
		t.Fatalf("context-aware fig17 table differs from legacy:\n%s\nvs\n%s",
			viaCtx.Table.String(), legacy.Table.String())
	}
}
