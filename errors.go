package gpuleak

import (
	"gpuleak/internal/attack"
	"gpuleak/internal/channel"
	"gpuleak/internal/defense"
	"gpuleak/internal/exp"
	"gpuleak/internal/serve"
)

// Stable error taxonomy of the facade. Each variable is the canonical
// errors.Is target for one failure family; the values are shared with the
// internal layers, so a sentinel surfaced through any path — the library
// API, the experiment registry, or the gpuleakd HTTP layer — matches
// without the caller importing internal packages:
//
//	if errors.Is(err, gpuleak.ErrBusy) { backoffAndRetry() }
//
// The kgsl driver's errno sentinels (EPERM, EACCES, ...) stay internal on
// purpose: a mitigated device is reported through wrapped errors whose
// text carries the errno, and the serving layer maps them onto HTTP 403.
var (
	// ErrUnknownExperiment reports an experiment ID absent from the
	// registry (RunExperiment, RunExperimentContext, POST /v1/experiment).
	ErrUnknownExperiment error = exp.ErrUnknownExperiment
	// ErrModelNotTrained reports an attack attempted without a classifier
	// for the victim configuration: no models preloaded into an Attack, or
	// a pretrained-only serving request missing its registry entry.
	ErrModelNotTrained error = attack.ErrModelNotTrained
	// ErrBusy reports backpressure from the serving layer: a shard work
	// queue was full and the request was rejected (HTTP 429) instead of
	// queued unboundedly.
	ErrBusy error = serve.ErrBusy
	// ErrSessionNotFound reports a streaming-session ID with no resident
	// state: never created, already finished, evicted under MaxSessions
	// pressure, or reaped by the idle timer (HTTP 404).
	ErrSessionNotFound error = serve.ErrSessionNotFound
	// ErrSessionConsumed reports a second attach to a streaming session:
	// each session is single-use and its verdict stream belongs to the
	// first GET that claims it (HTTP 409).
	ErrSessionConsumed error = serve.ErrSessionConsumed
	// ErrUnknownChannel reports a side-channel name absent from the
	// registry (WithChannel/WithChannels, the "channel"/"channels" request
	// fields). See Channels for the registered names (HTTP 400).
	ErrUnknownChannel error = channel.ErrUnknownChannel
	// ErrUnknownDefense reports a defense name absent from the registry
	// (DefenseByName, the "defense" request field). See Defenses for the
	// registered names (HTTP 400).
	ErrUnknownDefense error = defense.ErrUnknownDefense
)

// Is makes *UnknownExperimentError match ErrUnknownExperiment under
// errors.Is, so the legacy concrete error type and the sentinel taxonomy
// agree on identity.
func (e *UnknownExperimentError) Is(target error) bool {
	return target == ErrUnknownExperiment
}
