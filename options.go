package gpuleak

import "gpuleak/internal/sim"

// Option is a functional option accepted by the facade's context-aware
// entry points (TrainContext, OpenSampler, RunExperimentContext). Options
// are a thin layer over the existing option structs — CollectOptions,
// exp.Options and the sampler knobs keep working unchanged — so callers
// can start with the one-liner and graduate to the structs when they need
// the full surface.
type Option func(*apiOptions)

// apiOptions is the merged knob set the functional options write into;
// each entry point projects the fields it understands.
type apiOptions struct {
	workers  int
	obs      *Tracer
	interval Time
	repeats  int
	channels []string
}

func buildOptions(opts []Option) apiOptions {
	var o apiOptions
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithWorkers caps the worker pool an operation fans out across: 1 is
// fully serial, 0 (the default) one worker per CPU. Worker counts never
// change results — training and experiments are byte-identical at any
// parallelism.
func WithWorkers(n int) Option { return func(o *apiOptions) { o.workers = n } }

// WithObs attaches a telemetry tracer (see NewTracer): offline-phase
// spans, sampler spans and engine verdicts land on it deterministically.
func WithObs(tr *Tracer) Option { return func(o *apiOptions) { o.obs = tr } }

// WithInterval overrides the counter polling period (default 8 ms,
// halved on panels faster than 60 Hz during training).
func WithInterval(d Time) Option { return func(o *apiOptions) { o.interval = d } }

// WithRepeats sets how many times the offline phase emulates each key
// (default 3 for TrainContext, matching Train).
func WithRepeats(n int) Option { return func(o *apiOptions) { o.repeats = n } }

// WithChannel selects the side channel an operation reads through, by
// registry name (see Channels). The default is "kgsl", the paper's GPU
// perf-counter channel; every pre-channel-plane call site behaves as if
// this option never existed. Unknown names surface as ErrUnknownChannel
// when the operation runs.
func WithChannel(name string) Option {
	return func(o *apiOptions) { o.channels = []string{name} }
}

// WithChannels selects several side channels at once for entry points
// that support multi-channel operation (EavesdropSession): the first
// name is the primary channel, the second the secondary whose detections
// fuse into the primary's result. WithChannels(name) is WithChannel.
func WithChannels(names ...string) Option {
	return func(o *apiOptions) { o.channels = append([]string(nil), names...) }
}

// collect projects the options onto the offline phase's struct.
func (o apiOptions) collect() CollectOptions {
	return CollectOptions{
		Repeats:  o.repeats,
		Interval: o.interval,
		Workers:  o.workers,
		Obs:      o.obs,
		Channel:  o.channel(),
	}
}

// channel resolves the single-channel selection ("" = default KGSL).
func (o apiOptions) channel() string {
	if len(o.channels) == 0 {
		return ""
	}
	return o.channels[0]
}

// samplerInterval resolves the polling period for OpenSampler.
func (o apiOptions) samplerInterval() sim.Time { return o.interval }
