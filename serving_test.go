package gpuleak

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gpuleak/internal/serve"
)

// servedEavesdrop POSTs one eavesdrop request and returns the raw body
// (for byte-equality) plus the decoded response.
func servedEavesdrop(t *testing.T, url, body string) ([]byte, serve.EavesdropResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/eavesdrop", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/eavesdrop: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/eavesdrop: status %d: %s", resp.StatusCode, raw)
	}
	var er serve.EavesdropResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return raw, er
}

// TestServedEavesdropMatchesLibrary pins the serving layer's core
// contract: /v1/eavesdrop is byte-identical to the library quick start
// for the same request, at parallelism 1 and at parallelism 8 — the
// queues, the shared registry and the per-request contexts are control
// plumbing that never leaks into the result.
func TestServedEavesdropMatchesLibrary(t *testing.T) {
	const (
		text = "hunter2"
		seed = int64(7)
	)

	// Library path: exactly the package-doc quick start, with the serving
	// layer's own scenario/training derivations so both sides agree on
	// the configuration.
	req := serve.EavesdropRequest{Text: text, Seed: seed}
	scen, err := serve.ResolveScenario(req)
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainWith(serve.TrainConfig(scen.Cfg), CollectOptions{Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewVictim(scen.Cfg)
	sess.Run(TypeText(text, seed))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewAttack(model).Eavesdrop(f, 0, sess.End)
	if err != nil {
		t.Fatal(err)
	}

	srv := serve.NewServer(serve.Options{Shards: 2, TrainRepeats: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := fmt.Sprintf(`{"text":%q,"seed":%d}`, text, seed)

	check := func(raw []byte, got serve.EavesdropResponse) {
		t.Helper()
		if got.Text != want.Text {
			t.Errorf("served text %q, library text %q", got.Text, want.Text)
		}
		if got.Truth != sess.TypedText() {
			t.Errorf("served truth %q, session truth %q", got.Truth, sess.TypedText())
		}
		if got.Keys != len(want.Keys) {
			t.Errorf("served keys %d, library keys %d", got.Keys, len(want.Keys))
		}
		if got.EstimatedLength != want.EstimatedLength {
			t.Errorf("served estimated_length %d, library %d",
				got.EstimatedLength, want.EstimatedLength)
		}
		if got.Stats != want.Stats {
			t.Errorf("served stats %+v, library stats %+v", got.Stats, want.Stats)
		}
		if got.Model != want.Model.String() {
			t.Errorf("served model %q, library model %q", got.Model, want.Model)
		}
	}

	// Parallelism 1: a single request against a cold registry (the server
	// trains its own model on miss — it must land on the same bytes).
	serialRaw, serialResp := servedEavesdrop(t, ts.URL, body)
	check(serialRaw, serialResp)

	// Parallelism 8: identical concurrent requests against the now-warm
	// registry; every body must match the serial one byte for byte.
	const parallelism = 8
	raws := make([][]byte, parallelism)
	var wg sync.WaitGroup
	for i := 0; i < parallelism; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, resp := servedEavesdrop(t, ts.URL, body)
			check(raw, resp)
			raws[i] = raw
		}(i)
	}
	wg.Wait()
	for i, raw := range raws {
		if !bytes.Equal(raw, serialRaw) {
			t.Fatalf("concurrent response %d differs from serial response:\n%s\nvs\n%s",
				i, raw, serialRaw)
		}
	}
}

// TestServedPracticalSession pins that the server's practical mode uses
// the same script generator as PracticalSession: the served ground truth
// matches a locally simulated practical session.
func TestServedPracticalSession(t *testing.T) {
	const (
		text = "pass123"
		seed = int64(3)
	)
	scen, err := serve.ResolveScenario(serve.EavesdropRequest{
		Text: text, Seed: seed, Practical: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewVictim(scen.Cfg)
	sess.Run(PracticalSession(text, Volunteers[0], seed))

	srv := serve.NewServer(serve.Options{Shards: 1, TrainRepeats: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	_, got := servedEavesdrop(t, ts.URL,
		fmt.Sprintf(`{"text":%q,"seed":%d,"practical":true}`, text, seed))
	if got.Truth != sess.TypedText() {
		t.Fatalf("served practical truth %q, local session truth %q",
			got.Truth, sess.TypedText())
	}
}

// TestServedEavesdropDegradedMode pins the serving layer's degraded-mode
// contract: injected device faults that the retry policy absorbs produce
// 200s flagged degraded (with recovery accounting), never 5xx — and the
// "none" profile routed through the fault plane is byte-identical to not
// asking for faults at all.
func TestServedEavesdropDegradedMode(t *testing.T) {
	srv := serve.NewServer(serve.Options{Shards: 1, TrainRepeats: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A moderate profile must be absorbed: 200, degraded, with the
	// recovery counters explaining why the result may be imperfect.
	_, degraded := servedEavesdrop(t, ts.URL,
		`{"text":"hunter2","seed":7,"fault_profile":"moderate"}`)
	if !degraded.Degraded {
		t.Error("moderate fault profile produced a non-degraded response")
	}
	if degraded.Recovery == nil {
		t.Fatal("degraded response carries no recovery accounting")
	}
	if !degraded.Recovery.Degraded() {
		t.Errorf("recovery accounting %+v shows no recovery work", *degraded.Recovery)
	}

	// The "none" profile arms the fault plane and the retry policy but
	// injects nothing: the response must match the plain request byte for
	// byte (the passthrough identity, end to end through HTTP).
	plain, _ := servedEavesdrop(t, ts.URL, `{"text":"hunter2","seed":7}`)
	wrapped, _ := servedEavesdrop(t, ts.URL,
		`{"text":"hunter2","seed":7,"fault_profile":"none"}`)
	if !bytes.Equal(plain, wrapped) {
		t.Errorf("none-profile response differs from plain response:\n%s\nvs\n%s", wrapped, plain)
	}

	// Unknown profiles are client errors.
	resp, err := http.Post(ts.URL+"/v1/eavesdrop", "application/json",
		strings.NewReader(`{"text":"x","fault_profile":"catastrophic"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown fault profile: status %d, want 400", resp.StatusCode)
	}
}
