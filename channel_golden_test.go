package gpuleak_test

// The channel-plane refactor's contract: routing the KGSL pipeline
// through the generic Channel interface changes NOTHING. The goldens in
// testdata/channel_golden were captured from the pre-refactor code; the
// trained model and the eavesdropping result must match them byte for
// byte, at any worker count.

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"gpuleak"
	"gpuleak/internal/attack"
)

func goldenBytes(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile("testdata/channel_golden/" + name)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	return b
}

func TestKGSLModelByteIdenticalToPreChannelGolden(t *testing.T) {
	want := goldenBytes(t, "kgsl_model.json")
	for _, workers := range []int{1, 8} {
		cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 7}
		m, err := gpuleak.TrainWith(cfg, attack.CollectOptions{Repeats: 2, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.Key.Channel != "" {
			t.Fatalf("workers=%d: KGSL model key carries channel tag %q; default channel must stay canonically empty", workers, m.Key.Channel)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("workers=%d: model JSON differs from pre-refactor golden (%d vs %d bytes)", workers, buf.Len(), len(want))
		}
	}
}

func TestKGSLEavesdropByteIdenticalToPreChannelGolden(t *testing.T) {
	want := goldenBytes(t, "kgsl_result.json")
	cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 7}
	m, err := gpuleak.TrainWith(cfg, attack.CollectOptions{Repeats: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sess := gpuleak.NewVictim(cfg)
	sess.Run(gpuleak.TypeText("hunter2", 1))
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpuleak.NewAttack(m).Eavesdrop(f, 0, sess.End)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, want) {
		t.Errorf("eavesdrop result differs from pre-refactor golden:\ngot:  %s\nwant: %s", got, want)
	}
	if res.Text != "hunter2" {
		t.Errorf("Text = %q, want %q", res.Text, "hunter2")
	}
}
