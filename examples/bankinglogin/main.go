// Bankinglogin reproduces the paper's motivating scenario end to end: a
// user logs into several banking/investment apps while behaving
// naturally — making typos and corrections, switching to other apps
// mid-entry, glancing at notifications (§8). The attacking service keeps
// monitoring throughout and reports each recovered credential.
package main

import (
	"fmt"
	"log"

	"gpuleak"
	"gpuleak/internal/stats"
)

func main() {
	log.SetFlags(0)

	apps := []*gpuleak.App{gpuleak.Chase, gpuleak.Amex, gpuleak.Fidelity, gpuleak.Schwab}
	credentials := []string{"k9mzpt3a", "rossetti42", "n0v4sc0tia", "blue7whale"}

	exact := 0
	var totalEdit int
	for i, app := range apps {
		cfg := gpuleak.VictimConfig{
			Device: gpuleak.OnePlus8Pro,
			App:    app,
			Seed:   int64(100 + i),
		}
		// One classifier per (device, configuration); the attacker ships
		// them all preloaded (§3.2).
		model, err := gpuleak.Train(cfg)
		if err != nil {
			log.Fatalf("training for %s: %v", app.Name, err)
		}

		// Natural usage: corrections, app switches, notification glances.
		vol := gpuleak.Volunteers[i%len(gpuleak.Volunteers)]
		session := gpuleak.NewVictim(cfg)
		session.Run(gpuleak.PracticalSession(credentials[i], vol, int64(500+i)))

		file, err := session.Open()
		if err != nil {
			log.Fatal(err)
		}
		res, err := gpuleak.NewAttack(model).Eavesdrop(file, 0, session.End)
		if err != nil {
			log.Fatal(err)
		}

		truth := session.TypedText()
		ed := stats.Levenshtein(res.Text, truth)
		totalEdit += ed
		if res.Text == truth {
			exact++
		}
		fmt.Printf("%-10s typed=%-12q eavesdropped=%-12q corrections=%d switches=%d edit=%d\n",
			app.Name, truth, res.Text, res.Stats.Corrections, res.Stats.Switches, ed)
	}
	fmt.Printf("\nrecovered %d/%d credentials exactly; total edit distance %d\n",
		exact, len(apps), totalEdit)
}
