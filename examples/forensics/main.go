// Forensics takes the defender's viewpoint: given a captured GPU counter
// trace from a login session (what a platform security team could record
// while reproducing the attack), quantify exactly what an attacker could
// have extracted — the credential, the input length, the typing rhythm —
// and verify that the shipped SELinux fix closes the channel.
package main

import (
	"fmt"
	"log"

	"gpuleak"
	"gpuleak/internal/attack"
	"gpuleak/internal/sim"
)

func main() {
	log.SetFlags(0)

	// A session is recorded on a test device: the user logs into Chase.
	cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 61}
	sess := gpuleak.NewVictim(cfg)
	sess.Run(gpuleak.PracticalSession("aud1t-trail", gpuleak.Volunteers[2], 9))

	file, err := sess.Open()
	if err != nil {
		log.Fatal(err)
	}
	sampler, err := gpuleak.NewSamplerOn(file)
	if err != nil {
		log.Fatal(err)
	}
	capture, err := sampler.Collect(0, sess.End)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured trace: %d samples over %v\n", capture.Len(), sess.End)

	// The auditor replays the attacker's pipeline over the capture.
	model, err := gpuleak.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	atk := gpuleak.NewAttack(model)
	res, err := atk.EavesdropTrace(capture)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhat the capture leaks:")
	fmt.Printf("  credential      : %q (truth %q)\n", res.Text, sess.TypedText())
	fmt.Printf("  input length    : %d characters\n", res.EstimatedLength)
	if len(res.Keys) >= 2 {
		gap := res.Keys[1].At - res.Keys[0].At
		fmt.Printf("  typing rhythm   : first inter-key interval %v\n", gap)
	}
	fmt.Printf("  corrections seen: %d, app switches: %d\n",
		res.Stats.Corrections, res.Stats.Switches)

	// Offline (whole-trace) analysis squeezes out fragmented presses too.
	off, err := atk.EavesdropTraceOffline(capture)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  offline re-analysis: %q\n", off.Text)

	// Verify the fix: with the post-disclosure policy installed, the same
	// capture pipeline cannot even be started.
	patched := gpuleak.NewVictim(cfg)
	patched.Run(gpuleak.TypeText("aud1t-trail", 9))
	patched.Device.SetPolicy(gpuleak.GooglePatchPolicy())
	pf, err := patched.Open()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := attack.NewSampler(pf, 8*sim.Millisecond); err == nil {
		if _, err := atk.Eavesdrop(pf, 0, patched.End); err != nil {
			fmt.Println("\nwith the SELinux whitelist installed: counter reads are denied — channel closed")
		}
	} else {
		fmt.Println("\nwith the SELinux whitelist installed: counter reservation denied — channel closed")
	}
}
