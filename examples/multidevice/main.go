// Multidevice demonstrates §3.2 device recognition and §7.5 adaptability:
// the attacking application ships classifiers for several phone models
// and configurations, recognizes which device it landed on from the
// app-launch counter fingerprint, and applies the right model.
package main

import (
	"fmt"
	"log"

	"gpuleak"
	"gpuleak/internal/sim"
)

func main() {
	log.SetFlags(0)

	devices := []gpuleak.DeviceModel{
		gpuleak.LGV30, gpuleak.Pixel2, gpuleak.OnePlus7Pro,
		gpuleak.OnePlus8Pro, gpuleak.OnePlus9, gpuleak.GalaxyS21,
	}

	// Offline phase per configuration; the bundle ships with the APK.
	var models []*gpuleak.Model
	for _, dev := range devices {
		cfg := gpuleak.VictimConfig{Device: dev, Seed: 1}
		m, err := gpuleak.Train(cfg)
		if err != nil {
			log.Fatalf("training %s: %v", dev.Name, err)
		}
		models = append(models, m)
	}
	atk := gpuleak.NewAttack(models...)
	// §7.4: poll at no more than half the refresh interval; 4 ms covers
	// the 120 Hz devices in the bundle.
	atk.Interval = 4 * sim.Millisecond
	fmt.Printf("attacking app preloaded with %d device models\n\n", len(models))

	// The attacker does not know which device the victim uses; the launch
	// fingerprint decides.
	hits, recognized := 0, 0
	for i, dev := range devices {
		cfg := gpuleak.VictimConfig{Device: dev, Seed: int64(900 + i)}
		sess := gpuleak.NewVictim(cfg)
		sess.Run(gpuleak.TypeText("t0psecret", int64(40+i)))
		file, err := sess.Open()
		if err != nil {
			log.Fatal(err)
		}
		res, err := atk.Eavesdrop(file, 0, sess.End)
		if err != nil {
			log.Fatal(err)
		}
		truth := sess.TypedText()
		okDev := res.Model.Device == dev.Name
		okText := res.Text == truth
		if okDev {
			recognized++
		}
		if okText {
			hits++
		}
		fmt.Printf("%-20s recognized as %-20s device-ok=%-5v text=%q ok=%v\n",
			dev.Name, res.Model.Device, okDev, res.Text, okText)
	}
	fmt.Printf("\nrecognition: %d/%d; exact credential recovery: %d/%d\n",
		recognized, len(devices), hits, len(devices))
}
