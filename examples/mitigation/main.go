// Mitigation demonstrates the paper's §9 defenses and their effect on
// the attack: the SELinux/RBAC policy that denies unprivileged global
// counter reads (the fix Google shipped), counter-value obfuscation at
// increasing amplitudes, and disabling key-press popups.
package main

import (
	"fmt"
	"log"

	"gpuleak"
	"gpuleak/internal/stats"
)

const credential = "s3cretpass"

func main() {
	log.SetFlags(0)

	base := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 5}
	model, err := gpuleak.Train(base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("defense                        outcome")
	fmt.Println("-----------------------------  -------------------------------")

	// No defense.
	report("none", attackOnce(base, model, nil, 0))

	// §9.2 RBAC: untrusted apps may not read global counters.
	rbac := func(s *gpuleak.Session) { s.Device.SetPolicy(gpuleak.NewRBACPolicy()) }
	report("RBAC (SELinux whitelist)", attackOnce(base, model, rbac, 0))

	// §9.3 obfuscation at increasing amplitude: accuracy falls while the
	// injected GPU workload cost rises.
	for _, amp := range []float64{0.05, 0.3, 1.0} {
		amp := amp
		obf := func(s *gpuleak.Session) {
			o := gpuleak.NewObfuscator(amp, 77)
			s.Device.SetObfuscator(o)
		}
		label := fmt.Sprintf("obfuscation amp=%.2f", amp)
		report(label, attackOnce(base, model, obf, 0))
	}

	// §9.1 popup disabling: no popups, no per-key overdraw — but the
	// input length still leaks through the echo redraws.
	noPopup := base
	noPopup.DisablePopups = true
	report("popups disabled", attackOnce(noPopup, model, nil, 0))
}

func attackOnce(cfg gpuleak.VictimConfig, m *gpuleak.Model,
	defend func(*gpuleak.Session), seed int64) string {

	sess := gpuleak.NewVictim(cfg)
	sess.Run(gpuleak.TypeText(credential, 31+seed))
	if defend != nil {
		defend(sess)
	}
	file, err := sess.Open()
	if err != nil {
		return "blocked at open: " + err.Error()
	}
	res, err := gpuleak.NewAttack(m).Eavesdrop(file, 0, sess.End)
	if err != nil {
		return "blocked: counter read denied"
	}
	truth := sess.TypedText()
	if res.Text == truth {
		return fmt.Sprintf("LEAKED %q", res.Text)
	}
	return fmt.Sprintf("degraded: %q (edit distance %d, inferred length %d)",
		res.Text, stats.Levenshtein(res.Text, truth), len(res.Keys))
}

func report(label, outcome string) {
	fmt.Printf("%-30s %s\n", label, outcome)
}
