// Quickstart: the minimal end-to-end use of the gpuleak library — train a
// classifier, simulate a victim typing a password, eavesdrop it through
// the GPU performance counter side channel.
package main

import (
	"fmt"
	"log"

	"gpuleak"
)

func main() {
	log.SetFlags(0)

	// 1. The device configuration under study (OnePlus 8 Pro + GBoard +
	//    Chase login, the paper's workhorse setup).
	cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 1}

	// 2. Offline phase: on a device the attacker controls, emulate every
	//    key and learn each popup's counter signature.
	model, err := gpuleak.Train(cfg)
	if err != nil {
		log.Fatalf("offline phase: %v", err)
	}
	fmt.Printf("offline phase: learned %d key signatures (Cth=%.1f)\n",
		len(model.Keys), model.Cth)

	// 3. The victim types a credential into the banking app.
	session := gpuleak.NewVictim(cfg)
	session.Run(gpuleak.TypeText("hunter2", 7))

	// 4. Online phase: the unprivileged attacking app opens the GPU
	//    device file, polls the 11 Table-1 counters every 8 ms, and
	//    classifies the per-key deltas.
	file, err := session.Open()
	if err != nil {
		log.Fatalf("opening /dev/kgsl-3d0: %v", err)
	}
	result, err := gpuleak.NewAttack(model).Eavesdrop(file, 0, session.End)
	if err != nil {
		log.Fatalf("eavesdropping: %v", err)
	}

	fmt.Printf("victim typed : %q\n", session.TypedText())
	fmt.Printf("eavesdropped : %q\n", result.Text)
}
