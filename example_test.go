package gpuleak_test

import (
	"fmt"

	"gpuleak"
)

// The complete attack pipeline: offline training, a victim typing a
// credential, and online eavesdropping through the GPU counters.
func Example() {
	cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 1}

	model, err := gpuleak.Train(cfg)
	if err != nil {
		panic(err)
	}

	session := gpuleak.NewVictim(cfg)
	session.Run(gpuleak.TypeText("hunter2", 7))

	file, err := session.Open()
	if err != nil {
		panic(err)
	}
	result, err := gpuleak.NewAttack(model).Eavesdrop(file, 0, session.End)
	if err != nil {
		panic(err)
	}
	fmt.Println(result.Text)
	// Output: hunter2
}

// Installing the post-disclosure SELinux policy blocks the global counter
// read and with it the whole attack.
func Example_mitigated() {
	cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 2}
	model, err := gpuleak.Train(cfg)
	if err != nil {
		panic(err)
	}

	session := gpuleak.NewVictim(cfg)
	session.Run(gpuleak.TypeText("hunter2", 7))
	session.Device.SetPolicy(gpuleak.GooglePatchPolicy())

	file, err := session.Open()
	if err != nil {
		panic(err)
	}
	if _, err := gpuleak.NewAttack(model).Eavesdrop(file, 0, session.End); err != nil {
		fmt.Println("attack blocked")
	}
	// Output: attack blocked
}
