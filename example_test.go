package gpuleak_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"gpuleak"
	"gpuleak/internal/serve"
)

// The complete attack pipeline: offline training, a victim typing a
// credential, and online eavesdropping through the GPU counters.
func Example() {
	cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 1}

	model, err := gpuleak.Train(cfg)
	if err != nil {
		panic(err)
	}

	session := gpuleak.NewVictim(cfg)
	session.Run(gpuleak.TypeText("hunter2", 7))

	file, err := session.Open()
	if err != nil {
		panic(err)
	}
	result, err := gpuleak.NewAttack(model).Eavesdrop(file, 0, session.End)
	if err != nil {
		panic(err)
	}
	fmt.Println(result.Text)
	// Output: hunter2
}

// Installing the post-disclosure SELinux policy blocks the global counter
// read and with it the whole attack.
func Example_mitigated() {
	cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 2}
	model, err := gpuleak.Train(cfg)
	if err != nil {
		panic(err)
	}

	session := gpuleak.NewVictim(cfg)
	session.Run(gpuleak.TypeText("hunter2", 7))
	session.Device.SetPolicy(gpuleak.GooglePatchPolicy())

	file, err := session.Open()
	if err != nil {
		panic(err)
	}
	if _, err := gpuleak.NewAttack(model).Eavesdrop(file, 0, session.End); err != nil {
		fmt.Println("attack blocked")
	}
	// Output: attack blocked
}

// Injecting device faults through the fault plane: the retry policy
// absorbs EBUSY bursts, revocations and missed ticks, the result is
// flagged degraded instead of failing.
func Example_faultInjection() {
	cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 1}
	model, err := gpuleak.Train(cfg)
	if err != nil {
		panic(err)
	}

	session := gpuleak.NewVictim(cfg)
	session.Run(gpuleak.TypeText("hunter2", 7))
	file, err := session.Open()
	if err != nil {
		panic(err)
	}

	profile, _ := gpuleak.FaultProfileByName("moderate")
	plane := gpuleak.InjectFaults(file, profile, 5)

	atk := gpuleak.NewAttack(model)
	atk.Retry = gpuleak.DefaultRetryPolicy()
	result, err := atk.Eavesdrop(plane, 0, session.End)
	if err != nil {
		panic(err)
	}
	fmt.Println(result.Text, result.Degraded, plane.Stats.Total() > 0)
	// Output: hunter2 true true
}

// Arming a registered defense on the victim session: strength-1
// quantization floors every exported counter onto a key-press-sized
// grid, and the attacker's inference collapses while the platform pays
// half a percent of overhead. cmd/arms sweeps every registered defense
// over a strength grid this way and charts the frontier.
func Example_defenseTournament() {
	cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 1}
	model, err := gpuleak.Train(cfg)
	if err != nil {
		panic(err)
	}

	session := gpuleak.NewVictim(cfg)
	session.Run(gpuleak.TypeText("hunter2", 7))

	pol, err := gpuleak.DefenseByName("quantize")
	if err != nil {
		panic(err)
	}
	inst, err := pol.Arm(session, 1, gpuleak.DefenseSeed(1, 0))
	if err != nil {
		panic(err)
	}

	file, err := session.Open()
	if err != nil {
		panic(err)
	}
	probe := inst.WrapProbe("kgsl", file)

	atk := gpuleak.NewAttack(model)
	atk.Retry = gpuleak.DefaultRetryPolicy()
	result, err := atk.EavesdropProbe(context.Background(), probe, 0, session.End)
	if err != nil {
		panic(err)
	}
	fmt.Println(gpuleak.Defenses())
	fmt.Println(result.Text != "hunter2", inst.Overhead())
	// Output:
	// [jitter noise quantize ratelimit rbac]
	// true 0.005
}

// The serving layer under injected faults: recovered runs answer 200
// with a degraded flag and recovery accounting — faults cost accuracy,
// never availability.
func Example_degradedServing() {
	srv := serve.NewServer(serve.Options{Shards: 1, TrainRepeats: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/eavesdrop", "application/json",
		strings.NewReader(`{"text":"hunter2","seed":7,"fault_profile":"moderate"}`))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var er serve.EavesdropResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		panic(err)
	}
	fmt.Println(resp.StatusCode, er.Degraded, er.Recovery != nil)
	// Output: 200 true true
}
