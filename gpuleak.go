// Package gpuleak is a research reproduction of "Eavesdropping User
// Credentials via GPU Side Channels on Smartphones" (Yang, Chen, Huang,
// Yang, Gao — ASPLOS 2022). It implements the complete attack — reading
// Qualcomm Adreno GPU performance counters through the KGSL device file
// and inferring on-screen keyboard input from per-key GPU overdraw — on a
// faithful simulation of the Android graphics stack, together with the
// paper's mitigations and its full evaluation suite.
//
// The package is the high-level facade. The layers underneath:
//
//   - internal/render, internal/adreno, internal/kgsl — the tile-based
//     GPU, its performance counters, and the ioctl device-file interface;
//   - internal/keyboard, internal/android, internal/victim — the victim
//     UI stack: keyboards, login screens, compositor, device models;
//   - internal/attack — the paper's contribution: offline training,
//     online inference (Algorithm 1), app-switch and correction handling;
//   - internal/mitigate — §9 defenses (RBAC policies, obfuscation);
//   - internal/fault — a deterministic fault plane for the device file
//     (EBUSY bursts, counter revocation, missed ticks, wrapped reads);
//   - internal/exp — one runner per paper table/figure.
//
// # Quick start
//
//	cfg := gpuleak.VictimConfig{Device: gpuleak.OnePlus8Pro, Seed: 1}
//	model, _ := gpuleak.Train(cfg)                  // offline phase
//	session := gpuleak.NewVictim(cfg)               // victim device
//	session.Run(gpuleak.TypeText("hunter2", 1))     // user types
//	file, _ := session.Open()                       // /dev/kgsl-3d0
//	result, _ := gpuleak.NewAttack(model).Eavesdrop(file, 0, session.End)
//	fmt.Println(result.Text)                        // "hunter2"
//
// # Contexts, options, errors
//
// Every phase has a context-aware variant that honors cancellation
// without ever changing a completed result: TrainContext (stops between
// per-key collection tasks), Attack.EavesdropContext (checks at every
// sampler tick), Sampler.CollectContext, and RunExperimentContext. The
// context-free signatures remain as context.Background wrappers. The
// context entry points take functional options — WithWorkers, WithObs,
// WithInterval, WithRepeats — layered over the existing option structs.
// Failures match the stable taxonomy ErrUnknownExperiment, ErrBusy and
// ErrModelNotTrained under errors.Is.
//
// # Fault injection & degraded mode
//
// InjectFaults wraps a device file in a seeded, named FaultProfile;
// Attack.Retry (see DefaultRetryPolicy) absorbs the injected EBUSY
// bursts, revocations and missed ticks with sim-time backoff and
// re-reservation. Recovered runs set Result.Degraded and account for the
// recovery work in Result.Recovery; unabsorbed failures surface as typed
// *SampleError values classifiable with errors.As and IsRetryable. The
// zero profile is a byte-identical passthrough, and a fixed (profile,
// seed) replays the identical fault schedule at any worker count —
// cmd/chaos runs recovery-rate experiments on exactly this contract.
//
// # Serving
//
// cmd/gpuleakd wraps this pipeline in an HTTP/JSON service (package
// internal/serve): a sharded model registry trains classifiers on miss
// and serves concurrent /v1/eavesdrop, /v1/train and /v1/experiment
// requests through bounded per-shard work queues that reject with 429
// when full. Responses are byte-identical to the library path for the
// same seed at any concurrency; cmd/loadgen drives open-loop load
// against it. Requests may opt into fault injection (fault_profile);
// recovered runs answer 200 with a degraded flag rather than 5xx. See
// the README's "Serving" section and ARCHITECTURE.md for the request
// lifecycle.
//
// This code exists to let defenders study and quantify the leak; the
// "hardware" is a simulator and the package cannot read real GPU
// counters.
package gpuleak

import (
	"context"
	"fmt"
	"io"
	"strings"

	"gpuleak/internal/android"
	"gpuleak/internal/attack"
	"gpuleak/internal/channel"
	"gpuleak/internal/exp"
	"gpuleak/internal/input"
	"gpuleak/internal/keyboard"
	"gpuleak/internal/kgsl"
	"gpuleak/internal/mitigate"
	"gpuleak/internal/obs"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"

	// Register the built-in side channels so Channels, WithChannel and the
	// serving layer see both without any caller-side imports.
	_ "gpuleak/internal/kgslchan"
	_ "gpuleak/internal/proccount"
)

// Core types of the attack pipeline.
type (
	// VictimConfig selects the simulated device, app, keyboard and
	// environment of a victim session.
	VictimConfig = victim.Config
	// Session is a materialized victim run exposing the GPU device file
	// and the ground truth.
	Session = victim.Session
	// Model is a trained per-configuration classifier.
	Model = attack.Model
	// Attack is the attacking application: preloaded models + sampler +
	// online engine. Eavesdrop runs the full online phase;
	// EavesdropContext adds sampler-tick-granular cancellation.
	Attack = attack.Attack
	// Result is an eavesdropping outcome.
	Result = attack.Result
	// OnlineOptions tunes the §5 online engine (and its ablations).
	OnlineOptions = attack.OnlineOptions
	// CollectOptions tunes the offline phase.
	CollectOptions = attack.CollectOptions
	// MonitorOptions tunes the Figure-4 launch watcher.
	MonitorOptions = attack.MonitorOptions
	// MonitorResult reports a monitored eavesdropping run.
	MonitorResult = attack.MonitorResult
	// DeviceModel describes a phone.
	DeviceModel = android.DeviceModel
	// App is a target application.
	App = android.App
	// KeyboardLayout is an on-screen keyboard.
	KeyboardLayout = keyboard.Layout
	// Volunteer is a human typing-timing profile.
	Volunteer = input.Volunteer
	// Script is a sequence of user actions.
	Script = input.Script
	// KGSLFile is an open handle on the GPU device file.
	KGSLFile = kgsl.File
	// Time is a simulated timestamp in microseconds.
	Time = sim.Time
	// Tracer records the deterministic sim-time telemetry stream; attach
	// one via Attack.Obs or CollectOptions.Obs.
	Tracer = obs.Tracer
	// TelemetryEvent is one recorded telemetry event.
	TelemetryEvent = obs.Event
)

// Devices from the paper's evaluation.
var (
	LGV30       = android.LGV30
	Pixel2      = android.Pixel2
	OnePlus7Pro = android.OnePlus7Pro
	OnePlus8Pro = android.OnePlus8Pro
	OnePlus9    = android.OnePlus9
	GalaxyS21   = android.GalaxyS21
	Pixel5      = android.Pixel5
)

// Target applications.
var (
	Chase    = android.Chase
	Amex     = android.Amex
	Fidelity = android.Fidelity
	Schwab   = android.Schwab
	MyFICO   = android.MyFICO
	Experian = android.Experian
	PNC      = android.PNC
)

// Keyboards.
var (
	GBoard    = keyboard.GBoard
	SwiftKey  = keyboard.Swift
	Sogou     = keyboard.Sogou
	Pinyin    = keyboard.Pinyin
	GoBoard   = keyboard.Go
	Grammarly = keyboard.Grammarly
)

// Volunteers are the five §7 typing profiles.
var Volunteers = input.Volunteers

// NewVictim creates a victim device session. Call Session.Run with a
// Script, then Session.Open to obtain the device file the attacker reads.
func NewVictim(cfg VictimConfig) *Session { return victim.New(cfg) }

// Train runs the offline phase on a controlled device of the given
// configuration and returns the classifier to preload into the attack.
// See TrainContext for cancellation and functional options.
func Train(cfg VictimConfig) (*Model, error) {
	return attack.Collect(cfg, attack.CollectOptions{})
}

// TrainWith runs the offline phase with an explicit options struct;
// TrainContext(ctx, cfg, WithWorkers(...), ...) is the functional-option
// equivalent.
func TrainWith(cfg VictimConfig, opts CollectOptions) (*Model, error) {
	return attack.Collect(cfg, opts)
}

// NewAttack builds an attacking application from preloaded models.
func NewAttack(models ...*Model) *Attack { return attack.New(models...) }

// NewTracer creates a telemetry tracer. Wire it into Attack.Obs (online
// phase) or CollectOptions.Obs (offline phase), then export the merged
// stream with WriteTelemetry.
func NewTracer() *Tracer { return obs.New() }

// WriteTelemetry exports a tracer's event stream as deterministic JSONL.
func WriteTelemetry(w io.Writer, tr *Tracer) error {
	return obs.WriteJSONL(w, tr.Events())
}

// WriteTelemetryChrome exports a tracer's event stream as a Chrome
// trace-event file loadable in Perfetto / chrome://tracing.
func WriteTelemetryChrome(w io.Writer, tr *Tracer) error {
	return obs.WriteChromeTrace(w, tr.Events())
}

// TypeText builds a plain typing script using the first volunteer's
// timing, starting 0.7 s after app launch.
func TypeText(text string, seed int64) Script {
	return input.Typing(text, input.Volunteers[0], input.SpeedAny,
		sim.NewRand(seed), 700*sim.Millisecond)
}

// PracticalSession builds a §8-style session: typing with corrections,
// app switches and notification glances.
func PracticalSession(text string, v Volunteer, seed int64) Script {
	rng := sim.NewRand(seed)
	return input.Practical(text, v, input.DefaultPracticalOptions(), rng, 700*sim.Millisecond)
}

// Mitigations (§9).

// NewRBACPolicy returns the §9.2 SELinux-style role-based access control
// policy; install it with Session.Device.SetPolicy to block the attack.
func NewRBACPolicy() *mitigate.RBACPolicy { return mitigate.NewRBACPolicy() }

// NewObfuscator returns the §9.3 counter obfuscator; install it with
// Session.Device.SetObfuscator. Amplitude 1 injects key-press-sized noise.
func NewObfuscator(amplitude float64, seed uint64) *mitigate.NoiseObfuscator {
	return &mitigate.NoiseObfuscator{Amplitude: amplitude, Seed: seed}
}

// NewSELinuxPolicy compiles a §9.2 ioctl-whitelist policy document; see
// mitigate.GooglePatchPolicy for the rule syntax and the shipped fix.
func NewSELinuxPolicy(doc string) (*mitigate.IoctlPolicy, error) {
	return mitigate.ParsePolicy(strings.NewReader(doc))
}

// GooglePatchPolicy returns the compiled shape of the post-disclosure
// Android fix: apps keep the ioctls the GL driver needs but lose the
// global PERFCOUNTER_READ.
func GooglePatchPolicy() *mitigate.IoctlPolicy {
	return mitigate.NewGooglePatchPolicy()
}

// Experiment is one entry of the paper's evaluation suite (one runner
// per table and figure); see the exp package for the registry.
type Experiment = exp.Experiment

// Experiments lists every reproducible table and figure.
func Experiments() []Experiment { return exp.All }

// RunExperiment executes one experiment by figure/table ID ("fig17",
// "table2", ...). quick shrinks trial counts for fast runs. See
// RunExperimentContext for cancellation and worker/telemetry options.
func RunExperiment(id string, quick bool, seed int64) (*exp.Result, error) {
	return RunExperimentContext(context.Background(), id, quick, seed)
}

// UnknownExperimentError reports a bad experiment ID. It matches
// ErrUnknownExperiment under errors.Is.
type UnknownExperimentError struct{ ID string }

// Error returns the message, prefixed with the module name.
func (e *UnknownExperimentError) Error() string {
	return "gpuleak: unknown experiment " + e.ID
}

// PracticalSessionAt is PracticalSession with an explicit start time
// (e.g. after a PreLaunch foreign-use phase).
func PracticalSessionAt(text string, v Volunteer, seed int64, start Time) Script {
	rng := sim.NewRand(seed)
	return input.Practical(text, v, input.DefaultPracticalOptions(), rng, start)
}

// NewSamplerOn reserves the Table-1 counters on a device file and returns
// the 8 ms sampler, for callers that want the raw trace (forensics,
// offline segmentation). OpenSampler is the configurable variant
// (WithInterval, WithObs).
func NewSamplerOn(f *KGSLFile) (*attack.Sampler, error) {
	return attack.NewSampler(f, attack.DefaultInterval)
}

// The channel plane. The attack pipeline is generic over the side
// channel it samples: "kgsl" (the paper's GPU perf counters, the
// default everywhere a channel is not named) and "proccount" (an
// EavesDroid-style OS-counter channel) ship registered. Select one with
// WithChannel on TrainContext, or several with WithChannels on
// EavesdropSession to fuse their detections.

// FusionResult is the outcome of a multi-channel eavesdropping run: the
// per-channel results plus the fused one, with recovery/flip counts.
type FusionResult = attack.FusionResult

// Channels lists the registered side-channel names, sorted. Unknown
// names passed to WithChannel/WithChannels surface as ErrUnknownChannel.
func Channels() []string { return channel.Names() }

// EavesdropSession runs the online phase on a completed victim session
// over the configured side channels. With no channel options (or
// WithChannel) it samples one channel and Fused aliases Primary; with
// WithChannels(primary, secondary) it runs both and fuses the
// secondary's detections into the primary's result — see
// attack.Fuse for the flip/recover rules. models must hold one
// classifier per requested channel (trained via TrainContext with the
// matching WithChannel); a missing one fails with ErrModelNotTrained.
func EavesdropSession(ctx context.Context, sess *Session, models []*Model, start, end Time, opts ...Option) (*FusionResult, error) {
	o := buildOptions(opts)
	names := o.channels
	if len(names) == 0 {
		names = []string{""}
	}
	if len(names) > 2 {
		return nil, fmt.Errorf("gpuleak: EavesdropSession fuses at most two channels, got %d", len(names))
	}
	type run struct {
		ch     channel.Channel
		m      *Model
		deltas []trace.Delta
		res    *Result
	}
	runs := make([]run, len(names))
	for i, name := range names {
		ch, err := channel.Get(name)
		if err != nil {
			return nil, err
		}
		var m *Model
		for _, cand := range models {
			if cand != nil && cand.Key.Channel == channel.Canonical(ch.Name()) {
				m = cand
				break
			}
		}
		if m == nil {
			return nil, fmt.Errorf("gpuleak: no model for channel %q: %w", ch.Name(), attack.ErrModelNotTrained)
		}
		f, err := ch.Open(sess)
		if err != nil {
			return nil, fmt.Errorf("gpuleak: opening channel %q: %w", ch.Name(), err)
		}
		smp, err := attack.NewSamplerTaxonomy(f, ch.Interval(), attack.RetryPolicy{}, ch.Taxonomy())
		if err != nil {
			return nil, err
		}
		if i == 0 {
			smp.Obs = o.obs
		}
		tr, err := smp.CollectContext(ctx, start, end)
		if err != nil {
			return nil, err
		}
		a := &Attack{Models: []*Model{m}, Interval: ch.Interval(), Errors: ch.Taxonomy()}
		if i == 0 {
			a.Obs = o.obs
		}
		res, err := a.EavesdropTrace(tr)
		if err != nil {
			return nil, err
		}
		runs[i] = run{ch: ch, m: m, deltas: tr.Deltas(), res: res}
	}
	if len(runs) == 1 {
		return &FusionResult{Primary: runs[0].res, Fused: runs[0].res}, nil
	}
	return attack.Fuse(runs[0].m, runs[0].deltas, runs[0].res,
		runs[1].m, runs[1].res, runs[0].ch.Interval(), attack.FusionOptions{}), nil
}
