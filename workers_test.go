package gpuleak

import (
	"bytes"
	"testing"
)

// TestTrainWithWorkersIdentical pins the public-API determinism contract:
// TrainWith produces bit-identical models no matter how many collection
// workers fan out the offline phase.
func TestTrainWithWorkersIdentical(t *testing.T) {
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 99}
	encode := func(workers int) []byte {
		m, err := TrainWith(cfg, CollectOptions{Repeats: 1, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	if parallel := encode(8); !bytes.Equal(serial, parallel) {
		t.Fatalf("Workers:8 model differs from Workers:1 model (%d vs %d bytes)",
			len(parallel), len(serial))
	}
}
