package gpuleak

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gpuleak/internal/obs"
	"gpuleak/internal/serve"
	"gpuleak/internal/sim"
)

// sseFrame is one parsed Server-Sent-Events frame from a session stream.
type sseFrame struct {
	ID    uint64
	Event string
	Data  []byte
}

// streamSession creates a streaming session for body and consumes its SSE
// stream to completion, returning the parsed frames in order.
func streamSession(t *testing.T, url, body string) []sseFrame {
	t.Helper()
	resp, err := http.Post(url+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sessions: %v", err)
	}
	var sr serve.SessionResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding session response: %v", err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/sessions: status %d", resp.StatusCode)
	}

	stream, err := http.Get(url + "/v1/sessions/" + sr.ID + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: status %d", stream.StatusCode)
	}
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q, want text/event-stream", ct)
	}

	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, ": "):
			// Comment frame (router failover notes); carries no data.
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.ID) //nolint:errcheck // malformed ids fail the monotonicity check below
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return frames
}

// replayStream reconstructs the inferred text from a stream's key/retract
// frames, the way a live client would: append on "key", truncate to Keys
// on "retract".
func replayStream(t *testing.T, frames []sseFrame) string {
	t.Helper()
	var text []rune
	for _, f := range frames {
		if f.Event != "key" && f.Event != "retract" {
			continue
		}
		var ev serve.StreamEventData
		if err := json.Unmarshal(f.Data, &ev); err != nil {
			t.Fatalf("decoding %s frame %s: %v", f.Event, f.Data, err)
		}
		if ev.Schema != serve.StreamSchema {
			t.Fatalf("event schema %q, want %q", ev.Schema, serve.StreamSchema)
		}
		if ev.Kind == "key" {
			text = append(text, []rune(ev.Key)...)
		}
		if len(text) < ev.Keys {
			t.Fatalf("event claims %d keys but replay holds %d", ev.Keys, len(text))
		}
		text = text[:ev.Keys]
	}
	return string(text)
}

// TestStreamedEavesdropMatchesOneShot pins the streaming determinism
// contract: a session's SSE verdict stream carries exactly the incremental
// output of the one-shot /v1/eavesdrop run for the same request, and its
// closing "result" frame is the compact form of the one-shot response —
// at parallelism 1 and at parallelism 8, where every concurrent stream's
// verdict sequence is byte-identical (only the session id in the "open"
// frame may differ).
func TestStreamedEavesdropMatchesOneShot(t *testing.T) {
	srv := serve.NewServer(serve.Options{Shards: 2, TrainRepeats: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := `{"text":"hunter2","seed":7}`

	oneShotRaw, oneShot := servedEavesdrop(t, ts.URL, body)
	var oneShotCompact bytes.Buffer
	if err := json.Compact(&oneShotCompact, oneShotRaw); err != nil {
		t.Fatal(err)
	}

	check := func(frames []sseFrame) {
		t.Helper()
		if len(frames) < 2 {
			t.Fatalf("stream produced %d frames, want at least open+result", len(frames))
		}
		for i, f := range frames {
			if f.ID != uint64(i+1) {
				t.Fatalf("frame %d has id %d, want ids numbered from 1", i, f.ID)
			}
		}
		if frames[0].Event != "open" {
			t.Fatalf("first frame event %q, want open", frames[0].Event)
		}
		last := frames[len(frames)-1]
		if last.Event != "result" {
			t.Fatalf("last frame event %q, want result", last.Event)
		}
		if !bytes.Equal(last.Data, oneShotCompact.Bytes()) {
			t.Fatalf("result frame differs from one-shot response:\n%s\nvs\n%s",
				last.Data, oneShotCompact.Bytes())
		}
		if got := replayStream(t, frames); got != oneShot.Text {
			t.Fatalf("replaying the verdict stream yields %q, one-shot text %q", got, oneShot.Text)
		}
	}

	// Parallelism 1.
	serial := streamSession(t, ts.URL, body)
	check(serial)

	// Parallelism 8: concurrent sessions over the same warm registry. The
	// verdict sequence after the open frame must match the serial stream
	// frame for frame, byte for byte.
	const parallelism = 8
	streams := make([][]sseFrame, parallelism)
	var wg sync.WaitGroup
	for i := 0; i < parallelism; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			streams[i] = streamSession(t, ts.URL, body)
		}(i)
	}
	wg.Wait()
	for i, frames := range streams {
		check(frames)
		if len(frames) != len(serial) {
			t.Fatalf("concurrent stream %d has %d frames, serial stream %d", i, len(frames), len(serial))
		}
		for j := 1; j < len(frames); j++ {
			if frames[j].ID != serial[j].ID || frames[j].Event != serial[j].Event ||
				!bytes.Equal(frames[j].Data, serial[j].Data) {
				t.Fatalf("concurrent stream %d frame %d differs from serial:\n%s %s\nvs\n%s %s",
					i, j, frames[j].Event, frames[j].Data, serial[j].Event, serial[j].Data)
			}
		}
	}
}

// TestBatchedServingMatchesUnbatched pins the micro-batcher's identity
// contract end to end through HTTP: a server coalescing classification
// into cross-request micro-batches answers byte-identically to one that
// classifies inline, for one-shot and streamed requests alike, under
// concurrency that actually exercises coalescing.
func TestBatchedServingMatchesUnbatched(t *testing.T) {
	plain := httptest.NewServer(serve.NewServer(serve.Options{Shards: 2, TrainRepeats: 2}))
	defer plain.Close()
	batchedSrv := serve.NewServer(serve.Options{
		Shards:       2,
		TrainRepeats: 2,
		BatchWindow:  8 * sim.Millisecond,
		BatchMax:     16,
	})
	batched := httptest.NewServer(batchedSrv)
	defer batchedSrv.Close()
	defer batched.Close()
	body := `{"text":"letmein9","seed":11}`

	wantRaw, _ := servedEavesdrop(t, plain.URL, body)
	wantFrames := streamSession(t, plain.URL, body)

	const parallelism = 8
	raws := make([][]byte, parallelism)
	streams := make([][]sseFrame, parallelism)
	var wg sync.WaitGroup
	for i := 0; i < parallelism; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raws[i], _ = servedEavesdrop(t, batched.URL, body)
			streams[i] = streamSession(t, batched.URL, body)
		}(i)
	}
	wg.Wait()
	for i := 0; i < parallelism; i++ {
		if !bytes.Equal(raws[i], wantRaw) {
			t.Fatalf("batched response %d differs from unbatched response:\n%s\nvs\n%s",
				i, raws[i], wantRaw)
		}
		if len(streams[i]) != len(wantFrames) {
			t.Fatalf("batched stream %d has %d frames, unbatched stream %d",
				i, len(streams[i]), len(wantFrames))
		}
		for j := 1; j < len(wantFrames); j++ {
			if !bytes.Equal(streams[i][j].Data, wantFrames[j].Data) {
				t.Fatalf("batched stream %d frame %d differs from unbatched:\n%s\nvs\n%s",
					i, j, streams[i][j].Data, wantFrames[j].Data)
			}
		}
	}
}

// streamSessionTraced is streamSession with the trace plumbing exposed:
// the session is created with an explicit traceparent header (the same
// forwarding the router performs on every create and failover replay),
// and SSE comment lines — which carry the in-band trace announcement —
// are captured instead of dropped.
func streamSessionTraced(t *testing.T, url, body, traceparent string) ([]sseFrame, []string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/sessions", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.TraceparentHeader, traceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/sessions: %v", err)
	}
	var sr serve.SessionResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding session response: %v", err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/sessions: status %d", resp.StatusCode)
	}

	stream, err := http.Get(url + "/v1/sessions/" + sr.ID + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: status %d", stream.StatusCode)
	}

	var frames []sseFrame
	var comments []string
	var cur sseFrame
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, ": "):
			comments = append(comments, line)
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.ID) //nolint:errcheck // malformed ids fail frame checks in callers
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return frames, comments
}

// TestStreamTraceContinuity pins the cross-process trace contract on the
// streaming path: a session created with a forwarded traceparent (what
// the router sends on create AND on every failover replay) records its
// router hop, request span, queue admission, and the engine's verdict
// events all on the one trace's track; the stream announces that trace
// in-band before the open frame; and the per-trace JSONL export is
// byte-identical at TrainWorkers 1 and 8 and across a replay on a fresh
// replica — which is exactly why a failover splice keeps one trace id.
func TestStreamTraceContinuity(t *testing.T) {
	const seed = 7
	body := `{"text":"hunter2","seed":7}`
	tc := obs.NewTrace(seed)
	tp := tc.Traceparent()

	run := func(workers int) ([]byte, []string) {
		tr := obs.New()
		srv := serve.NewServer(serve.Options{Shards: 2, TrainRepeats: 2, TrainWorkers: workers, Obs: tr})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		frames, comments := streamSessionTraced(t, ts.URL, body, tp)
		if len(frames) < 2 || frames[len(frames)-1].Event != "result" {
			t.Fatalf("stream did not finish with a result frame (%d frames)", len(frames))
		}
		var evs []obs.Event
		for _, e := range tr.Events() {
			if e.Track == tc.Track() {
				evs = append(evs, e)
			}
		}
		if len(evs) == 0 {
			t.Fatalf("no events recorded on trace track %q", tc.Track())
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, evs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), comments
	}

	serial, comments := run(1)
	if len(comments) == 0 || comments[0] != ": traceparent "+tp {
		t.Fatalf("stream comments %q do not announce the forwarded trace %q", comments, tp)
	}
	// Every layer of the span hierarchy lands on the same trace track:
	// the remote hop, the request span, queue admission, and the attack
	// engine's per-key verdicts.
	for _, name := range []string{"serve.router_hop", "serve.request", "serve.queue_admit", "engine.verdict"} {
		if !bytes.Contains(serial, []byte(`"name":"`+name+`"`)) {
			t.Errorf("trace export missing %s event", name)
		}
	}
	if bytes.Contains(serial, []byte(`"track":"trace/`)) &&
		!bytes.Contains(serial, []byte(`"track":"trace/`+tc.TraceID+`"`)) {
		t.Errorf("trace export carries a foreign trace id")
	}

	// Byte identity across worker counts: the span/event stream of one
	// trace is a function of the request seed, not of scheduling.
	parallel, _ := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace export differs between TrainWorkers=1 and TrainWorkers=8:\n%s\nvs\n%s", serial, parallel)
	}

	// Failover replay: the router re-creates the session on a fresh
	// replica with the original traceparent. The replay's trace must be
	// the same trace, byte for byte, and be re-announced in-band.
	replay, replayComments := run(1)
	if len(replayComments) == 0 || replayComments[0] != ": traceparent "+tp {
		t.Fatalf("failover replay announced %q, want the original trace %q", replayComments, tp)
	}
	if !bytes.Equal(serial, replay) {
		t.Fatalf("failover replay produced a different trace:\n%s\nvs\n%s", serial, replay)
	}
}
