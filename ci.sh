#!/bin/sh
# ci.sh — the tier-1 gate. Every check a PR must clear, in the order
# cheapest-first so formatting noise fails before the race detector runs.
#
#   1. gofmt      — no unformatted files (analysis testdata excluded:
#                   fixtures deliberately hold un-idiomatic code)
#   2. go vet     — the stock toolchain analyzers
#   3. go build   — everything compiles
#   4. gpuvet     — the repo's own invariants (see README "Static
#                   analysis & CI"); production packages only, gated
#                   against the committed gpuvet-baseline.json, with the
#                   //gpuvet:ignore count reconciled against
#                   gpuvet-waivers.json and the hot-path allocation
#                   budget (gpuvet-hotalloc.json) enforced. Emits a
#                   SARIF report; when CI_ARTIFACTS is set it is copied
#                   there for upload.
#   5. go test    — full test suite under the race detector
#   6. telemetry  — seeded attackd run with -telemetry; the stream must
#                   parse and be non-empty (traceview validates), and it
#                   must convert to a Chrome trace file
#   7. gpuleakd   — serving smoke: start the daemon, loadgen -smoke checks
#                   /healthz and one /v1/eavesdrop round-trip, then SIGTERM
#                   must drain to a clean exit 0
#   8. chaos      — fault-injection smoke: cmd/chaos -check asserts the
#                   none profile is a byte-identical passthrough and that
#                   injected faults are recovered, never fatal
#   9. bench      — warn-only: a fresh benchpaper -json report compared
#                   against the committed BENCH_baseline.json with
#                   benchcmp; regressions print but never fail tier-1
#                   (shared runners are too noisy to gate on wall time)
#
# Run from the repo root: ./ci.sh
#
# Flags / environment:
#   --quick          skip the race detector (plain `go test`); for fast
#                    local iteration — CI always runs the full gate
#   GOTESTFLAGS      extra flags appended to the test invocation, e.g.
#                    GOTESTFLAGS=-short ./ci.sh  (CI's benchmark-smoke
#                    job uses this to keep the wall clock bounded)
#   GOFLAGS          honored as usual by the go tool itself
set -eu
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "usage: ./ci.sh [--quick]" >&2
        exit 2
        ;;
    esac
done

echo "==> gofmt"
# The lockcheck/simtime/floateq fixtures under internal/analysis/testdata
# exist to trip analyzers, not to model style; leave them out on purpose.
unformatted=$(find . -name '*.go' -not -path './internal/analysis/testdata/*' | xargs gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> gpuvet ./..."
# Findings gate against the committed baseline (currently empty — any
# finding is new), the waiver ledger reconciles every //gpuvet:ignore,
# and the SARIF report is archived when CI_ARTIFACTS is set.
gpuvet_dir=$(mktemp -d)
trap 'rm -rf "$gpuvet_dir"' EXIT
go run ./cmd/gpuvet \
    -sarif "$gpuvet_dir/gpuvet.sarif" \
    -baseline gpuvet-baseline.json \
    -waivers gpuvet-waivers.json \
    ./...
if [ -n "${CI_ARTIFACTS:-}" ]; then
    mkdir -p "$CI_ARTIFACTS"
    cp "$gpuvet_dir/gpuvet.sarif" "$CI_ARTIFACTS/gpuvet.sarif"
fi

if [ "$quick" = 1 ]; then
    echo "==> go test ./... (quick: race detector skipped)"
    # shellcheck disable=SC2086 — GOTESTFLAGS is intentionally word-split
    go test ${GOTESTFLAGS:-} ./...
else
    echo "==> go test -race ./..."
    # shellcheck disable=SC2086
    go test -race ${GOTESTFLAGS:-} ./...
fi

echo "==> telemetry smoke"
# A seeded end-to-end run must emit a parseable, non-empty telemetry
# stream; traceview exits non-zero on an empty or malformed file, and the
# conversion exercises the Perfetto exporter.
telemetry_dir=$(mktemp -d)
trap 'rm -rf "$gpuvet_dir" "$telemetry_dir"' EXIT
go run ./cmd/attackd -seed 7 -text hunter2 \
    -telemetry "$telemetry_dir/telemetry.jsonl" >/dev/null 2>&1
go run ./cmd/traceview -telemetry "$telemetry_dir/telemetry.jsonl" \
    -telemetry-chrome "$telemetry_dir/telemetry.trace.json"
test -s "$telemetry_dir/telemetry.trace.json"

echo "==> gpuleakd smoke"
# The serving layer must come up, answer /healthz and one end-to-end
# /v1/eavesdrop (loadgen -smoke verifies the inference matches the ground
# truth), and drain cleanly on SIGTERM. Binaries are prebuilt so the
# background daemon is a real process we can signal and wait on.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$gpuvet_dir" "$telemetry_dir" "$smoke_dir"' EXIT
go build -o "$smoke_dir/gpuleakd" ./cmd/gpuleakd
go build -o "$smoke_dir/loadgen" ./cmd/loadgen
"$smoke_dir/gpuleakd" -addr 127.0.0.1:18419 >"$smoke_dir/gpuleakd.log" 2>&1 &
gpuleakd_pid=$!
if ! "$smoke_dir/loadgen" -smoke -addr http://127.0.0.1:18419 -healthz-wait 30s; then
    echo "gpuleakd smoke failed; daemon log:" >&2
    cat "$smoke_dir/gpuleakd.log" >&2
    kill "$gpuleakd_pid" 2>/dev/null || true
    exit 1
fi
kill -TERM "$gpuleakd_pid"
if ! wait "$gpuleakd_pid"; then
    echo "gpuleakd did not drain cleanly on SIGTERM; daemon log:" >&2
    cat "$smoke_dir/gpuleakd.log" >&2
    exit 1
fi

echo "==> chaos smoke"
# The fault plane's contracts, end to end: the "none" profile must match
# the raw library path byte for byte, faulty profiles must inject and the
# retry policy must recover every trial (fatal=0). The report lands in
# the smoke dir so CI can archive it.
go run ./cmd/chaos -profiles none,moderate -trials 3 -seed 7 \
    -out "$smoke_dir/chaos.json" -check
if [ -n "${CI_ARTIFACTS:-}" ]; then
    mkdir -p "$CI_ARTIFACTS"
    cp "$smoke_dir/chaos.json" "$CI_ARTIFACTS/chaos.json"
fi

echo "==> bench compare (warn-only)"
# Perf trajectory visibility, not a gate: compare a fresh quick-scale
# report against the committed baseline. benchcmp's exit status is
# swallowed on purpose — wall-clock thresholds are a human decision made
# against the recorded trajectory, and shared runners are noisy.
go run ./cmd/benchpaper -json > "$smoke_dir/bench.json"
if ! go run ./cmd/benchcmp BENCH_baseline.json "$smoke_dir/bench.json"; then
    echo "WARNING: bench report drifted from BENCH_baseline.json (not a gate)" >&2
fi
if [ -n "${CI_ARTIFACTS:-}" ]; then
    cp "$smoke_dir/bench.json" "$CI_ARTIFACTS/bench.json"
fi

echo "CI: all gates passed"
