#!/bin/sh
# ci.sh — the tier-1 gate. Every check a PR must clear, in the order
# cheapest-first so formatting noise fails before the race detector runs.
#
#   1. gofmt      — no unformatted files (analysis testdata excluded:
#                   fixtures deliberately hold un-idiomatic code)
#   2. go vet     — the stock toolchain analyzers
#   3. go build   — everything compiles
#   4. gpuvet     — the repo's own invariants (see README "Static
#                   analysis & CI"); production packages only, gated
#                   against the committed gpuvet-baseline.json, with the
#                   //gpuvet:ignore count reconciled against
#                   gpuvet-waivers.json and the hot-path allocation
#                   budget (gpuvet-hotalloc.json) enforced. Emits a
#                   SARIF report; when CI_ARTIFACTS is set it is copied
#                   there for upload.
#   5. go test    — full test suite under the race detector
#   6. telemetry  — seeded attackd run with -telemetry; the stream must
#                   parse and be non-empty (traceview validates), and it
#                   must convert to a Chrome trace file
#   7. gpuleakd   — serving smoke: start the daemon on an ephemeral port,
#                   loadgen -smoke checks /healthz and one /v1/eavesdrop
#                   round-trip, then SIGTERM must drain to a clean exit 0
#   8. fleet      — fleet smoke: two gpuleakd replicas behind a
#                   gpuleakrouter, one streaming session end to end with
#                   the owning replica SIGKILLed mid-stream (the router
#                   must re-shard and the replayed stream must still match
#                   the ground truth — and keep the client-minted trace
#                   id), a short -fleet load report (gpuleak-load/v1,
#                   archived when CI_ARTIFACTS is set), a gpuleakstat
#                   -json -check scrape of the surviving fleet gating on
#                   error rate and p99 (the gpuleak-metrics/v1 report is
#                   archived too), then SIGTERM must drain router and
#                   survivor to exit 0
#   9. chaos      — fault-injection smoke: cmd/chaos -check asserts the
#                   none profile is a byte-identical passthrough and that
#                   injected faults are recovered, never fatal
#  10. fusion     — channel-plane smoke: the seeded fusion experiment
#                   must show multi-channel fusion beating the best
#                   single channel on the starve profile
#                   (fusion.win > 0.01)
#  11. arms       — defense-plane smoke: cmd/arms -check asserts the
#                   tournament frontier covers every registered defense
#                   and holds a worthwhile point (fused char-accuracy
#                   drop >= 0.30 at <= 0.10 overhead), and the fresh
#                   report must match the committed arms-report.json
#                   byte for byte (the run is seeded and deterministic)
#  12. bench      — two-part: a BLOCKING `benchcmp -metrics-only` gate
#                   (fixed seed+quick metrics are deterministic, so any
#                   drift vs BENCH_baseline.json is a behavior change;
#                   fig25's wall-time metrics are skipped by design) plus
#                   the warn-only wall-clock comparison (shared runners
#                   are too noisy to gate on timings)
#
# Run from the repo root: ./ci.sh
#
# Flags / environment:
#   --quick          skip the race detector (plain `go test`); for fast
#                    local iteration — CI always runs the full gate
#   GOTESTFLAGS      extra flags appended to the test invocation, e.g.
#                    GOTESTFLAGS=-short ./ci.sh  (CI's benchmark-smoke
#                    job uses this to keep the wall clock bounded)
#   GOFLAGS          honored as usual by the go tool itself
set -eu
cd "$(dirname "$0")"

# wait_file FILE [TRIES] — poll (10 Hz) until FILE exists non-empty; the
# daemons publish their kernel-assigned ephemeral ports through -addr-file,
# so nothing in this script hard-codes a port.
wait_file() {
    _wf_tries=${2:-100}
    while [ ! -s "$1" ]; do
        _wf_tries=$((_wf_tries - 1))
        if [ "$_wf_tries" -le 0 ]; then
            echo "timed out waiting for $1" >&2
            return 1
        fi
        sleep 0.1
    done
}

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "usage: ./ci.sh [--quick]" >&2
        exit 2
        ;;
    esac
done

echo "==> gofmt"
# The lockcheck/simtime/floateq fixtures under internal/analysis/testdata
# exist to trip analyzers, not to model style; leave them out on purpose.
unformatted=$(find . -name '*.go' -not -path './internal/analysis/testdata/*' | xargs gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> gpuvet ./..."
# Findings gate against the committed baseline (currently empty — any
# finding is new), the waiver ledger reconciles every //gpuvet:ignore,
# and the SARIF report is archived when CI_ARTIFACTS is set.
gpuvet_dir=$(mktemp -d)
trap 'rm -rf "$gpuvet_dir"' EXIT
go run ./cmd/gpuvet \
    -sarif "$gpuvet_dir/gpuvet.sarif" \
    -baseline gpuvet-baseline.json \
    -waivers gpuvet-waivers.json \
    ./...
if [ -n "${CI_ARTIFACTS:-}" ]; then
    mkdir -p "$CI_ARTIFACTS"
    cp "$gpuvet_dir/gpuvet.sarif" "$CI_ARTIFACTS/gpuvet.sarif"
fi

if [ "$quick" = 1 ]; then
    echo "==> go test ./... (quick: race detector skipped)"
    # shellcheck disable=SC2086 — GOTESTFLAGS is intentionally word-split
    go test ${GOTESTFLAGS:-} ./...
else
    echo "==> go test -race ./..."
    # shellcheck disable=SC2086
    go test -race ${GOTESTFLAGS:-} ./...
fi

echo "==> telemetry smoke"
# A seeded end-to-end run must emit a parseable, non-empty telemetry
# stream; traceview exits non-zero on an empty or malformed file, and the
# conversion exercises the Perfetto exporter.
telemetry_dir=$(mktemp -d)
trap 'rm -rf "$gpuvet_dir" "$telemetry_dir"' EXIT
go run ./cmd/attackd -seed 7 -text hunter2 \
    -telemetry "$telemetry_dir/telemetry.jsonl" >/dev/null 2>&1
go run ./cmd/traceview -telemetry "$telemetry_dir/telemetry.jsonl" \
    -telemetry-chrome "$telemetry_dir/telemetry.trace.json"
test -s "$telemetry_dir/telemetry.trace.json"

echo "==> gpuleakd smoke"
# The serving layer must come up, answer /healthz and one end-to-end
# /v1/eavesdrop (loadgen -smoke verifies the inference matches the ground
# truth), and drain cleanly on SIGTERM. Binaries are prebuilt so the
# background daemon is a real process we can signal and wait on; the
# kernel picks the port (-addr :0) and -addr-file publishes it.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$gpuvet_dir" "$telemetry_dir" "$smoke_dir"' EXIT
go build -o "$smoke_dir/gpuleakd" ./cmd/gpuleakd
go build -o "$smoke_dir/loadgen" ./cmd/loadgen
go build -o "$smoke_dir/gpuleakrouter" ./cmd/gpuleakrouter
go build -o "$smoke_dir/gpuleakstat" ./cmd/gpuleakstat
"$smoke_dir/gpuleakd" -addr 127.0.0.1:0 -addr-file "$smoke_dir/gpuleakd.addr" \
    >"$smoke_dir/gpuleakd.log" 2>&1 &
gpuleakd_pid=$!
wait_file "$smoke_dir/gpuleakd.addr"
gpuleakd_addr=$(cat "$smoke_dir/gpuleakd.addr")
if ! "$smoke_dir/loadgen" -smoke -addr "http://$gpuleakd_addr" -healthz-wait 30s; then
    echo "gpuleakd smoke failed; daemon log:" >&2
    cat "$smoke_dir/gpuleakd.log" >&2
    kill "$gpuleakd_pid" 2>/dev/null || true
    exit 1
fi
kill -TERM "$gpuleakd_pid"
if ! wait "$gpuleakd_pid"; then
    echo "gpuleakd did not drain cleanly on SIGTERM; daemon log:" >&2
    cat "$smoke_dir/gpuleakd.log" >&2
    exit 1
fi

echo "==> fleet smoke"
# The fleet-scale contracts, end to end with real processes: a consistent-
# hash router over two replicas must serve a routed warmup one-shot, keep
# a streaming session alive across a SIGKILL of the replica that owns it
# (re-sharding onto the survivor and replaying the deterministic stream so
# the client-visible splice is invisible), and the final inference must
# still match the ground truth. Then a short open-loop fleet load records
# the gpuleak-load/v1 trajectory, and SIGTERM must drain the router and
# the surviving replica to clean exits.
fleet_dir=$(mktemp -d)
trap 'rm -rf "$gpuvet_dir" "$telemetry_dir" "$smoke_dir" "$fleet_dir"' EXIT
for i in 1 2; do
    "$smoke_dir/gpuleakd" -addr 127.0.0.1:0 -addr-file "$fleet_dir/replica$i.addr" \
        >"$fleet_dir/replica$i.log" 2>&1 &
    eval "replica${i}_pid=\$!"
    wait_file "$fleet_dir/replica$i.addr"
    eval "replica${i}_addr=\$(cat \"\$fleet_dir/replica$i.addr\")"
done
printf 'http://%s %s\nhttp://%s %s\n' \
    "$replica1_addr" "$replica1_pid" "$replica2_addr" "$replica2_pid" \
    >"$fleet_dir/replicas.pids"
"$smoke_dir/gpuleakrouter" -addr 127.0.0.1:0 -addr-file "$fleet_dir/router.addr" \
    -backends "http://$replica1_addr,http://$replica2_addr" -probe 100ms \
    >"$fleet_dir/router.log" 2>&1 &
router_pid=$!
wait_file "$fleet_dir/router.addr"
router_addr=$(cat "$fleet_dir/router.addr")

fleet_logs() {
    echo "router log:" >&2
    cat "$fleet_dir/router.log" >&2
    echo "replica logs:" >&2
    cat "$fleet_dir/replica1.log" "$fleet_dir/replica2.log" >&2
}
if ! "$smoke_dir/loadgen" -fleet-smoke -addr "http://$router_addr" \
    -replica-pids "$fleet_dir/replicas.pids" \
    -killed-file "$fleet_dir/killed.pid" -healthz-wait 30s; then
    echo "fleet smoke failed" >&2
    fleet_logs
    kill "$router_pid" "$replica1_pid" "$replica2_pid" 2>/dev/null || true
    exit 1
fi
killed_pid=$(cat "$fleet_dir/killed.pid")

# Fleet load trajectory over the surviving topology (warn-free by
# construction: the router re-routes everything to the survivor).
"$smoke_dir/loadgen" -fleet -addr "http://$router_addr" -rate 4 -duration 3s \
    -out "$fleet_dir/fleet-report.json"
if [ -n "${CI_ARTIFACTS:-}" ]; then
    mkdir -p "$CI_ARTIFACTS"
    cp "$fleet_dir/fleet-report.json" "$CI_ARTIFACTS/fleet-report.json"
fi

# Observability gate: scrape the router and every replica the ring still
# reports up, merge the RED rollups, and fail the build if the fleet's
# error rate or p99 breaches the thresholds. This is where the failover
# above must show up as metrics (failover counter, evictions) without
# showing up as errors.
if ! "$smoke_dir/gpuleakstat" -router "http://$router_addr" -json -check \
    -out "$fleet_dir/stat-report.json"; then
    echo "gpuleakstat check failed; report:" >&2
    cat "$fleet_dir/stat-report.json" >&2 || true
    fleet_logs
    kill "$router_pid" "$replica1_pid" "$replica2_pid" 2>/dev/null || true
    exit 1
fi
if [ -n "${CI_ARTIFACTS:-}" ]; then
    mkdir -p "$CI_ARTIFACTS"
    cp "$fleet_dir/stat-report.json" "$CI_ARTIFACTS/stat-report.json"
fi

# Drain: router first (it must finish relaying), then the survivor. The
# SIGKILLed replica is reaped without judging its exit status.
kill -TERM "$router_pid"
if ! wait "$router_pid"; then
    echo "gpuleakrouter did not drain cleanly on SIGTERM" >&2
    fleet_logs
    kill "$replica1_pid" "$replica2_pid" 2>/dev/null || true
    exit 1
fi
fleet_drained=0
for pid in "$replica1_pid" "$replica2_pid"; do
    if [ "$pid" = "$killed_pid" ]; then
        wait "$pid" 2>/dev/null || true
        continue
    fi
    kill -TERM "$pid"
    if wait "$pid"; then
        fleet_drained=$((fleet_drained + 1))
    fi
done
if [ "$fleet_drained" -ne 1 ]; then
    echo "surviving replica did not drain cleanly on SIGTERM" >&2
    fleet_logs
    exit 1
fi

echo "==> chaos smoke"
# The fault plane's contracts, end to end: the "none" profile must match
# the raw library path byte for byte, faulty profiles must inject and the
# retry policy must recover every trial (fatal=0). The report lands in
# the smoke dir so CI can archive it.
go run ./cmd/chaos -profiles none,moderate -trials 3 -seed 7 \
    -out "$smoke_dir/chaos.json" -check
if [ -n "${CI_ARTIFACTS:-}" ]; then
    mkdir -p "$CI_ARTIFACTS"
    cp "$smoke_dir/chaos.json" "$CI_ARTIFACTS/chaos.json"
fi

echo "==> fusion smoke"
# The channel plane's headline claim, gated: decision-level fusion of
# the kgsl and proccount channels must beat the best single channel on
# the starve profile (fusion.win is the char-accuracy margin; the
# experiment is seeded and quick-scale, so the value is deterministic —
# it is also pinned exactly by the bench metrics gate below, this gate
# states the directional claim on its own).
go run ./cmd/benchpaper -json -run fusion > "$smoke_dir/fusion.json"
fusion_win=$(sed -n 's/.*"fusion\.win": *\(-\{0,1\}[0-9.eE+-]*\).*/\1/p' \
    "$smoke_dir/fusion.json" | head -n 1)
if [ -z "$fusion_win" ] || ! awk "BEGIN{exit !($fusion_win > 0.01)}"; then
    echo "fusion smoke failed: fusion.win='$fusion_win' (must exceed 0.01)" >&2
    exit 1
fi
echo "    fusion.win=$fusion_win"
if [ -n "${CI_ARTIFACTS:-}" ]; then
    mkdir -p "$CI_ARTIFACTS"
    cp "$smoke_dir/fusion.json" "$CI_ARTIFACTS/fusion.json"
fi

echo "==> arms smoke"
# The defense plane's contracts, gated: the tournament must sweep every
# registered defense over the full strength grid, report overheads in
# [0, 1], and contain at least one worthwhile frontier point (a >=0.30
# fused char-accuracy drop at <=0.10 overhead). The run is seeded and
# bit-identical at any worker count, so the fresh report must also match
# the committed arms-report.json — the canonical frontier EXPERIMENTS.md
# quotes — byte for byte.
go run ./cmd/arms -trials 3 -seed 1 -out "$smoke_dir/arms-report.json" -check
if ! cmp -s arms-report.json "$smoke_dir/arms-report.json"; then
    echo "arms smoke: fresh report drifted from the committed arms-report.json" >&2
    echo "if intended, regenerate: go run ./cmd/arms -trials 3 -seed 1 -out arms-report.json" >&2
    echo "and update the EXPERIMENTS.md arms-race table to match" >&2
    diff arms-report.json "$smoke_dir/arms-report.json" >&2 || true
    exit 1
fi
if [ -n "${CI_ARTIFACTS:-}" ]; then
    mkdir -p "$CI_ARTIFACTS"
    cp "$smoke_dir/arms-report.json" "$CI_ARTIFACTS/arms-report.json"
fi

echo "==> bench metrics gate (blocking)"
# Determinism gate: with the committed seed+quick settings every headline
# metric is a pure function of the code, so any drift from
# BENCH_baseline.json is a behavior change that must be reviewed (and the
# baseline regenerated in the same PR if intended). Wall time is excluded
# here, as are fig25's metrics — that experiment measures the attacker's
# real classification wall time by design.
go run ./cmd/benchpaper -json > "$smoke_dir/bench.json"
go run ./cmd/benchcmp -metrics-only -skip 'fig25/*' \
    BENCH_baseline.json "$smoke_dir/bench.json"

echo "==> bench wall-clock compare (warn-only)"
# Perf trajectory visibility, not a gate: wall-clock thresholds are a
# human decision made against the recorded trajectory, and shared runners
# are too noisy to gate on timings.
if ! go run ./cmd/benchcmp BENCH_baseline.json "$smoke_dir/bench.json"; then
    echo "WARNING: bench wall time drifted from BENCH_baseline.json (not a gate)" >&2
fi
if [ -n "${CI_ARTIFACTS:-}" ]; then
    cp "$smoke_dir/bench.json" "$CI_ARTIFACTS/bench.json"
fi

echo "CI: all gates passed"
