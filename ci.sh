#!/bin/sh
# ci.sh — the tier-1 gate. Every check a PR must clear, in the order
# cheapest-first so formatting noise fails before the race detector runs.
#
#   1. gofmt      — no unformatted files (analysis testdata excluded:
#                   fixtures deliberately hold un-idiomatic code)
#   2. go vet     — the stock toolchain analyzers
#   3. go build   — everything compiles
#   4. gpuvet     — the repo's own invariants (see README "Static
#                   analysis & CI"); production packages only
#   5. go test    — full test suite under the race detector
#
# Run from the repo root: ./ci.sh
#
# Flags / environment:
#   --quick          skip the race detector (plain `go test`); for fast
#                    local iteration — CI always runs the full gate
#   GOTESTFLAGS      extra flags appended to the test invocation, e.g.
#                    GOTESTFLAGS=-short ./ci.sh  (CI's benchmark-smoke
#                    job uses this to keep the wall clock bounded)
#   GOFLAGS          honored as usual by the go tool itself
set -eu
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "usage: ./ci.sh [--quick]" >&2
        exit 2
        ;;
    esac
done

echo "==> gofmt"
# The lockcheck/simtime/floateq fixtures under internal/analysis/testdata
# exist to trip analyzers, not to model style; leave them out on purpose.
unformatted=$(find . -name '*.go' -not -path './internal/analysis/testdata/*' | xargs gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> gpuvet ./..."
go run ./cmd/gpuvet ./...

if [ "$quick" = 1 ]; then
    echo "==> go test ./... (quick: race detector skipped)"
    # shellcheck disable=SC2086 — GOTESTFLAGS is intentionally word-split
    go test ${GOTESTFLAGS:-} ./...
else
    echo "==> go test -race ./..."
    # shellcheck disable=SC2086
    go test -race ${GOTESTFLAGS:-} ./...
fi

echo "CI: all gates passed"
