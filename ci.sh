#!/bin/sh
# ci.sh — the tier-1 gate. Every check a PR must clear, in the order
# cheapest-first so formatting noise fails before the race detector runs.
#
#   1. gofmt      — no unformatted files (analysis testdata excluded:
#                   fixtures deliberately hold un-idiomatic code)
#   2. go vet     — the stock toolchain analyzers
#   3. go build   — everything compiles
#   4. gpuvet     — the repo's own invariants (see README "Static
#                   analysis & CI"); production packages only. Includes
#                   the doccheck gate: exported symbols on the documented
#                   surface (facade, serve, obs, fault) must carry godoc
#   5. go test    — full test suite under the race detector
#   6. telemetry  — seeded attackd run with -telemetry; the stream must
#                   parse and be non-empty (traceview validates), and it
#                   must convert to a Chrome trace file
#   7. gpuleakd   — serving smoke: start the daemon, loadgen -smoke checks
#                   /healthz and one /v1/eavesdrop round-trip, then SIGTERM
#                   must drain to a clean exit 0
#   8. chaos      — fault-injection smoke: cmd/chaos -check asserts the
#                   none profile is a byte-identical passthrough and that
#                   injected faults are recovered, never fatal
#
# Run from the repo root: ./ci.sh
#
# Flags / environment:
#   --quick          skip the race detector (plain `go test`); for fast
#                    local iteration — CI always runs the full gate
#   GOTESTFLAGS      extra flags appended to the test invocation, e.g.
#                    GOTESTFLAGS=-short ./ci.sh  (CI's benchmark-smoke
#                    job uses this to keep the wall clock bounded)
#   GOFLAGS          honored as usual by the go tool itself
set -eu
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "usage: ./ci.sh [--quick]" >&2
        exit 2
        ;;
    esac
done

echo "==> gofmt"
# The lockcheck/simtime/floateq fixtures under internal/analysis/testdata
# exist to trip analyzers, not to model style; leave them out on purpose.
unformatted=$(find . -name '*.go' -not -path './internal/analysis/testdata/*' | xargs gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> gpuvet ./..."
go run ./cmd/gpuvet ./...

if [ "$quick" = 1 ]; then
    echo "==> go test ./... (quick: race detector skipped)"
    # shellcheck disable=SC2086 — GOTESTFLAGS is intentionally word-split
    go test ${GOTESTFLAGS:-} ./...
else
    echo "==> go test -race ./..."
    # shellcheck disable=SC2086
    go test -race ${GOTESTFLAGS:-} ./...
fi

echo "==> telemetry smoke"
# A seeded end-to-end run must emit a parseable, non-empty telemetry
# stream; traceview exits non-zero on an empty or malformed file, and the
# conversion exercises the Perfetto exporter.
telemetry_dir=$(mktemp -d)
trap 'rm -rf "$telemetry_dir"' EXIT
go run ./cmd/attackd -seed 7 -text hunter2 \
    -telemetry "$telemetry_dir/telemetry.jsonl" >/dev/null 2>&1
go run ./cmd/traceview -telemetry "$telemetry_dir/telemetry.jsonl" \
    -telemetry-chrome "$telemetry_dir/telemetry.trace.json"
test -s "$telemetry_dir/telemetry.trace.json"

echo "==> gpuleakd smoke"
# The serving layer must come up, answer /healthz and one end-to-end
# /v1/eavesdrop (loadgen -smoke verifies the inference matches the ground
# truth), and drain cleanly on SIGTERM. Binaries are prebuilt so the
# background daemon is a real process we can signal and wait on.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$telemetry_dir" "$smoke_dir"' EXIT
go build -o "$smoke_dir/gpuleakd" ./cmd/gpuleakd
go build -o "$smoke_dir/loadgen" ./cmd/loadgen
"$smoke_dir/gpuleakd" -addr 127.0.0.1:18419 >"$smoke_dir/gpuleakd.log" 2>&1 &
gpuleakd_pid=$!
if ! "$smoke_dir/loadgen" -smoke -addr http://127.0.0.1:18419 -healthz-wait 30s; then
    echo "gpuleakd smoke failed; daemon log:" >&2
    cat "$smoke_dir/gpuleakd.log" >&2
    kill "$gpuleakd_pid" 2>/dev/null || true
    exit 1
fi
kill -TERM "$gpuleakd_pid"
if ! wait "$gpuleakd_pid"; then
    echo "gpuleakd did not drain cleanly on SIGTERM; daemon log:" >&2
    cat "$smoke_dir/gpuleakd.log" >&2
    exit 1
fi

echo "==> chaos smoke"
# The fault plane's contracts, end to end: the "none" profile must match
# the raw library path byte for byte, faulty profiles must inject and the
# retry policy must recover every trial (fatal=0). The report lands in
# the smoke dir so CI can archive it.
go run ./cmd/chaos -profiles none,moderate -trials 3 -seed 7 \
    -out "$smoke_dir/chaos.json" -check
if [ -n "${CI_ARTIFACTS:-}" ]; then
    mkdir -p "$CI_ARTIFACTS"
    cp "$smoke_dir/chaos.json" "$CI_ARTIFACTS/chaos.json"
fi

echo "CI: all gates passed"
