#!/bin/sh
# ci.sh — the tier-1 gate. Every check a PR must clear, in the order
# cheapest-first so formatting noise fails before the race detector runs.
#
#   1. gofmt      — no unformatted files anywhere in the tree
#   2. go vet     — the stock toolchain analyzers
#   3. go build   — everything compiles
#   4. gpuvet     — the repo's own invariants (see README "Static
#                   analysis & CI"); production packages only
#   5. go test    — full test suite under the race detector
#
# Run from the repo root: ./ci.sh
set -eu
cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> gpuvet ./..."
go run ./cmd/gpuvet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "CI: all gates passed"
