package gpuleak

import (
	"gpuleak/internal/defense"
)

// The defense plane. Where the fault plane (fault.go) models the
// environment degrading the attack by accident, the defense plane models
// the platform fighting back on purpose: a registry of composable,
// strength-parameterized countermeasures (§9) — counter-read rate
// limiting, value quantization, noise obfuscation, counter-group RBAC,
// read-latency jitter — each reporting an overhead estimate, so the
// cmd/arms tournament can chart the accuracy-vs-overhead frontier.
// Everything is deterministic: a fixed (defense, strength, seed) replays
// bit-identically, and strength 0 is a byte-identical passthrough.

// Defense-plane types, re-exported from the internal layer.
type (
	// DefensePolicy is one registered defense: Name/Doc/Channels describe
	// it, Overhead estimates its platform cost at a strength, and Arm
	// binds it to a victim session. Resolve by name with DefenseByName;
	// "a+b" names arm a chain.
	DefensePolicy = defense.Policy
	// DefenseInstance is one armed defense on one session: WrapProbe
	// filters a channel's read path, Overhead reports the armed cost.
	DefenseInstance = defense.Instance
)

// Defenses returns the registered defense names, sorted — the values
// accepted by DefenseByName and the "defense" serving-request field, and
// the rows of the cmd/arms frontier.
func Defenses() []string { return defense.Names() }

// DefenseByName resolves a registered defense, or a "+"-joined chain of
// them ("quantize+jitter": members arm in listed order, overheads add).
// Unknown names fail with an error matching ErrUnknownDefense.
func DefenseByName(name string) (DefensePolicy, error) { return defense.Get(name) }

// ChainDefenses combines defenses into one policy: members arm in listed
// order at a shared strength, probe wraps compose first-listed innermost,
// overheads add (capped at 1).
func ChainDefenses(members ...DefensePolicy) DefensePolicy { return defense.Chain(members...) }

// DefenseSeed derives the deterministic defense seed for a scenario
// index from a base seed — the derivation served requests use when the
// request leaves defense_seed unset.
func DefenseSeed(base int64, scenario int) int64 { return defense.Seed(base, scenario) }
