package gpuleak

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden telemetry fixtures")

// goldenRun is a fixed-seed attackd-equivalent run with telemetry on the
// online phase: train a model (untraced — training cost is covered by
// TestTelemetryTrainWorkersIdentical), eavesdrop a short credential, and
// export the merged JSONL stream.
func goldenRun(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := VictimConfig{Device: OnePlus8Pro, Seed: 7}
	m, err := TrainWith(cfg, CollectOptions{Repeats: 1, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}

	sess := NewVictim(cfg)
	sess.Run(TypeText("ab1", 7))
	tracer := NewTracer()
	sess.Device.SetMetrics(tracer.Metrics())
	f, err := sess.Open()
	if err != nil {
		t.Fatal(err)
	}
	atk := NewAttack(m)
	atk.Obs = tracer
	res, err := atk.Eavesdrop(f, 0, sess.End)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != sess.TypedText() {
		t.Fatalf("attack missed: %q vs %q", res.Text, sess.TypedText())
	}

	var buf bytes.Buffer
	if err := WriteTelemetry(&buf, tracer); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTelemetryGolden pins the exact event stream of a fixed-seed run
// against a checked-in golden file: any unintended change to event names,
// fields, ordering or serialization shows up as a diff. Regenerate with
//
//	go test -run TestTelemetryGolden -update .
func TestTelemetryGolden(t *testing.T) {
	got := goldenRun(t, 1)
	path := filepath.Join("testdata", "telemetry_golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("telemetry stream diverges from golden at line %d:\n got: %s\nwant: %s",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("telemetry stream length differs from golden: %d vs %d lines", len(gl), len(wl))
	}
}

// TestTelemetryWorkersIdentical pins the tentpole determinism guarantee
// end to end: the exported stream of a fixed-seed run is byte-identical
// at any worker count, even though telemetry was recorded from racing
// goroutines.
func TestTelemetryWorkersIdentical(t *testing.T) {
	serial := goldenRun(t, 1)
	if par := goldenRun(t, 8); !bytes.Equal(serial, par) {
		t.Fatalf("workers=8 telemetry differs from workers=1 (%d vs %d bytes)", len(par), len(serial))
	}
}

// TestTelemetryTrainWorkersIdentical covers the offline phase: per-task
// child tracers are pre-created in index order, so the training stream is
// also byte-identical at any worker count.
func TestTelemetryTrainWorkersIdentical(t *testing.T) {
	stream := func(workers int) []byte {
		tracer := NewTracer()
		cfg := VictimConfig{Device: OnePlus8Pro, Seed: 99}
		if _, err := TrainWith(cfg, CollectOptions{Repeats: 1, Workers: workers, Obs: tracer}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := WriteTelemetry(&buf, tracer); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := stream(1)
	if serial == nil || !bytes.Contains(serial, []byte("offline.task")) {
		t.Fatal("training stream empty or missing offline.task spans")
	}
	if par := stream(8); !bytes.Equal(serial, par) {
		t.Fatalf("workers=8 training telemetry differs from workers=1 (%d vs %d bytes)", len(par), len(serial))
	}
}
