// Benchmarks: one per paper table/figure (regenerating the reported rows
// via internal/exp and printing them with -v), plus microbenchmarks of the
// attack's hot paths. Run:
//
//	go test -bench=. -benchmem
//
// Figure benches execute their experiment once (quick scale), report the
// headline metric through testing.B metrics, and then time the
// experiment's characteristic inner operation.
package gpuleak

import (
	"fmt"
	"sync"
	"testing"

	"gpuleak/internal/attack"
	"gpuleak/internal/exp"
	"gpuleak/internal/input"
	"gpuleak/internal/sim"
	"gpuleak/internal/trace"
	"gpuleak/internal/victim"
)

// ---------------------------------------------------------------------
// Shared fixtures.

var (
	benchOnce    sync.Once
	benchModel   *Model
	benchTrace   *trace.Trace
	benchSession *victim.Session
)

func benchSetup(b *testing.B) (*Model, *trace.Trace) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := VictimConfig{Device: OnePlus8Pro, Seed: 1}
		m, err := TrainWith(cfg, CollectOptions{Repeats: 2})
		if err != nil {
			panic(err)
		}
		benchModel = m
		sess := NewVictim(cfg)
		sess.Run(TypeText("benchmark42credential", 5))
		benchSession = sess
		f, err := sess.Open()
		if err != nil {
			panic(err)
		}
		s, err := attack.NewSampler(f, attack.DefaultInterval)
		if err != nil {
			panic(err)
		}
		tr, err := s.Collect(0, sess.End)
		if err != nil {
			panic(err)
		}
		benchTrace = tr
	})
	return benchModel, benchTrace
}

// experiment runs one exp experiment once and reports its headline
// metrics; the per-iteration cost measured is the experiment's own
// runtime at quick scale divided across iterations via a single run.
func experimentBench(b *testing.B, id string, metrics ...string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var res *exp.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = e.Run(exp.Options{Quick: true, Seed: 20260705})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, mkey := range metrics {
		b.ReportMetric(res.Metric(mkey), sanitizeUnit(mkey))
	}
	if testing.Verbose() {
		b.Logf("\n%s", res.Table.String())
	}
}

// sanitizeUnit makes a metric name a legal testing.B unit (no whitespace).
func sanitizeUnit(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')', '\\':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// ---------------------------------------------------------------------
// One bench per paper table/figure.

func BenchmarkFig05KeyDeltas(b *testing.B)     { experimentBench(b, "fig5", "delta_w", "delta_n") }
func BenchmarkFig06Scatter(b *testing.B)       { experimentBench(b, "fig6", "min_2d_separation") }
func BenchmarkFig11SystemFactors(b *testing.B) { experimentBench(b, "fig11", "dup_rate", "split_rate") }
func BenchmarkFig13AppSwitch(b *testing.B)     { experimentBench(b, "fig13", "switches_detected") }
func BenchmarkFig14InputLength(b *testing.B)   { experimentBench(b, "fig14", "correct_steps") }
func BenchmarkFig16Volunteers(b *testing.B)    { experimentBench(b, "fig16", "interval_spread_ratio") }
func BenchmarkFig17TextAccuracy(b *testing.B) {
	experimentBench(b, "fig17", "avg_text_acc", "char_acc")
}
func BenchmarkFig18PerKey(b *testing.B)    { experimentBench(b, "fig18", "overall", "worst_acc") }
func BenchmarkTable2Baseline(b *testing.B) { experimentBench(b, "table2", "max_accuracy") }
func BenchmarkFig19Apps(b *testing.B)      { experimentBench(b, "fig19", "min_text_acc") }
func BenchmarkFig20Keyboards(b *testing.B) { experimentBench(b, "fig20", "char_acc_spread") }
func BenchmarkFig21Speed(b *testing.B)     { experimentBench(b, "fig21", "fast_minus_slow_text") }
func BenchmarkFig22Load(b *testing.B)      { experimentBench(b, "fig22", "gpu_75_text", "cpu_75_text") }
func BenchmarkFig23Interval(b *testing.B) {
	experimentBench(b, "fig23", "60hz_8ms_text", "120hz_12ms_text")
}
func BenchmarkFig24Adaptability(b *testing.B) { experimentBench(b, "fig24", "text_acc_spread") }
func BenchmarkFig25InferenceTime(b *testing.B) {
	experimentBench(b, "fig25", "frac_under_0.1ms", "p95_ms")
}
func BenchmarkFig26Power(b *testing.B) { experimentBench(b, "fig26", "max_extra_pct_2h") }
func BenchmarkFig28Practical(b *testing.B) {
	experimentBench(b, "fig28", "avg_trace_acc", "avg_char_acc")
}
func BenchmarkFig29Obfuscation(b *testing.B) {
	experimentBench(b, "fig29", "baseline_text", "pnc_text")
}
func BenchmarkModelSize(b *testing.B) { experimentBench(b, "modelsize", "model_bytes") }

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationDedupWindow(b *testing.B) {
	experimentBench(b, "ablation-dedup", "text_75ms (paper)", "text_disabled")
}
func BenchmarkAblationSplit(b *testing.B) {
	experimentBench(b, "ablation-split", "text_on", "text_off")
}
func BenchmarkAblationThreshold(b *testing.B) {
	experimentBench(b, "ablation-threshold", "text_1.0x", "text_0.1x")
}
func BenchmarkAblationCounterSet(b *testing.B) {
	experimentBench(b, "ablation-counters", "char_all 11", "char_LRZ only")
}
func BenchmarkAblationCorrections(b *testing.B) {
	experimentBench(b, "ablation-corrections", "trace_on", "trace_off")
}

// ---------------------------------------------------------------------
// Microbenchmarks of the attack's hot paths.

// BenchmarkCounterRead measures one multi-counter ioctl read (the §4
// sampling primitive the attacker invokes every 8 ms).
func BenchmarkCounterRead(b *testing.B) {
	benchSetup(b)
	f, err := benchSession.Open()
	if err != nil {
		b.Fatal(err)
	}
	if err := f.ReserveSelected(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadSelected(sim.Time(i%1000) * 8 * sim.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassify measures the nearest-centroid classification of one
// counter delta (the §7.6 inference step, paper: <0.1 ms).
func BenchmarkClassify(b *testing.B) {
	m, tr := benchSetup(b)
	ds := tr.Deltas()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Classify(ds[i%len(ds)].V)
	}
}

// BenchmarkClassifyDenoised measures the merged-delta decomposition path.
func BenchmarkClassifyDenoised(b *testing.B) {
	m, tr := benchSetup(b)
	ds := tr.Deltas()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ClassifyDenoised(ds[i%len(ds)].V)
	}
}

// BenchmarkEngineTrace measures the full online engine over a complete
// credential-entry trace.
func BenchmarkEngineTrace(b *testing.B) {
	m, tr := benchSetup(b)
	ds := tr.Deltas()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := attack.NewEngine(m, tr.Interval, attack.OnlineOptions{})
		eng.ProcessAll(ds)
	}
}

// BenchmarkVictimSession measures materializing a full victim session
// (compositor + GPU timeline) for a 10-character credential.
func BenchmarkVictimSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := VictimConfig{Device: OnePlus8Pro, Seed: int64(i)}
		sess := NewVictim(cfg)
		sess.Run(TypeText("tencharpwd", int64(i)))
	}
}

// BenchmarkOfflineCollect measures the full offline phase (all keys,
// 1 repeat).
func BenchmarkOfflineCollect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := VictimConfig{Device: OnePlus8Pro, Seed: int64(i + 1)}
		if _, err := TrainWith(cfg, CollectOptions{Repeats: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflineCollectWorkers measures the offline phase at fixed
// worker-pool sizes; the BENCH_*.json trajectory compares the variants to
// spot scaling regressions. The trained model is bit-identical across
// variants, so only the wall clock moves.
func BenchmarkOfflineCollectWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := VictimConfig{Device: OnePlus8Pro, Seed: int64(i + 1)}
				if _, err := TrainWith(cfg, CollectOptions{Repeats: 1, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig17Workers measures a batch-heavy experiment at fixed
// worker-pool sizes (trial fan-out dominates once the model is cached).
func BenchmarkFig17Workers(b *testing.B) {
	e, ok := exp.ByID("fig17")
	if !ok {
		b.Fatal("fig17 not registered")
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(exp.Options{Quick: true, Seed: 20260705, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEnd measures one complete eavesdropping run: victim
// session + sampling + recognition + inference.
func BenchmarkEndToEnd(b *testing.B) {
	m, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := VictimConfig{Device: OnePlus8Pro, Seed: int64(i + 7)}
		sess := NewVictim(cfg)
		sess.Run(TypeText("hunter2pass", int64(i)))
		f, err := sess.Open()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewAttack(m).Eavesdrop(f, 0, sess.End); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBotScriptGen measures offline-phase script generation (the §6
// bot program's planning step).
func BenchmarkBotScriptGen(b *testing.B) {
	rng := sim.NewRand(3)
	for i := 0; i < b.N; i++ {
		_ = input.Typing("the quick brown fox", input.Volunteers[i%5], input.SpeedAny, rng, 0)
	}
}

var benchSinkStr string

// BenchmarkModelJSON measures model serialization (APK packing, §7.6).
func BenchmarkModelJSON(b *testing.B) {
	m, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb writerCounter
		if err := m.WriteJSON(&sb); err != nil {
			b.Fatal(err)
		}
		benchSinkStr = fmt.Sprint(sb.n)
	}
}

type writerCounter struct{ n int }

func (w *writerCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

func BenchmarkAblationGreedyVsOffline(b *testing.B) {
	experimentBench(b, "ablation-greedy", "text_online", "text_offline")
}

func BenchmarkSec9Defenses(b *testing.B) {
	experimentBench(b, "sec9", "text_none", "attack_ioctl_rate")
}

func BenchmarkGuessing(b *testing.B) {
	experimentBench(b, "guessing", "acc@1", "acc@10")
}

func BenchmarkTransferMatrix(b *testing.B) {
	experimentBench(b, "transfer", "diag_mean", "offdiag_mean")
}

func BenchmarkFig12NoiseGeometry(b *testing.B) {
	experimentBench(b, "fig12", "noise_classified_as_key")
}

func BenchmarkFig27Behaviors(b *testing.B) {
	experimentBench(b, "fig27", "total_behaviors")
}
