module gpuleak

go 1.22
